// Gateway tests: dual-bus forwarding and attack containment (each
// evaluation vehicle has two CAN buses, Sec. V-A).
#include "can/gateway.hpp"

#include <gtest/gtest.h>

#include "attack/attacker.hpp"
#include "can/periodic.hpp"
#include "core/michican_node.hpp"

namespace mcan::can {
namespace {

using sim::BitTime;

struct TwoBusEnv {
  WiredAndBus bus_a{sim::BusSpeed{125'000}};
  WiredAndBus bus_b{sim::BusSpeed{125'000}};
  BitController sender_a{"sender_a"};
  BitController listener_b{"listener_b"};
  std::vector<CanFrame> b_received;

  TwoBusEnv() {
    sender_a.attach_to(bus_a);
    listener_b.attach_to(bus_b);
    listener_b.set_rx_callback(
        [this](const CanFrame& f, BitTime) { b_received.push_back(f); });
  }

  void run(sim::BitTime bits) {
    for (sim::BitTime i = 0; i < bits; ++i) {
      bus_a.step();
      bus_b.step();
    }
  }
};

TEST(Gateway, ForwardsRoutedIdsAcrossBuses) {
  TwoBusEnv env;
  GatewayNode gw{"gw", forward_ids({0x100}), forward_ids({})};
  gw.attach_to(env.bus_a, env.bus_b);

  env.sender_a.enqueue(CanFrame::make(0x100, {0xAA, 0xBB}));
  env.sender_a.enqueue(CanFrame::make(0x200, {0xCC}));  // not routed
  env.run(800);

  ASSERT_EQ(env.b_received.size(), 1u);
  EXPECT_EQ(env.b_received[0], CanFrame::make(0x100, {0xAA, 0xBB}));
  EXPECT_EQ(gw.forwarded_a_to_b(), 1u);
  EXPECT_EQ(gw.forwarded_b_to_a(), 0u);
}

TEST(Gateway, BidirectionalRouting) {
  TwoBusEnv env;
  BitController sender_b{"sender_b"};
  sender_b.attach_to(env.bus_b);
  std::vector<CanFrame> a_received;
  BitController listener_a{"listener_a"};
  listener_a.attach_to(env.bus_a);
  listener_a.set_rx_callback(
      [&](const CanFrame& f, BitTime) { a_received.push_back(f); });

  GatewayNode gw{"gw", forward_ids({0x100}), forward_ids({0x300})};
  gw.attach_to(env.bus_a, env.bus_b);

  env.sender_a.enqueue(CanFrame::make(0x100, {0x01}));
  sender_b.enqueue(CanFrame::make(0x300, {0x02}));
  env.run(800);

  // listener_b sees both the local 0x300 and the forwarded 0x100;
  // listener_a sees the local 0x100 and the forwarded 0x300.
  auto saw = [](const std::vector<CanFrame>& v, CanId id) {
    for (const auto& f : v) {
      if (f.id == id) return true;
    }
    return false;
  };
  EXPECT_TRUE(saw(env.b_received, 0x100));
  EXPECT_TRUE(saw(env.b_received, 0x300));
  EXPECT_TRUE(saw(a_received, 0x300));
  EXPECT_EQ(gw.forwarded_a_to_b(), 1u);
  EXPECT_EQ(gw.forwarded_b_to_a(), 1u);
}

TEST(Gateway, DosFloodDoesNotCrossUnroutedGateway) {
  // Containment: a 0x000 flood saturates bus A; bus B traffic continues
  // untouched because 0x000 is not in the routing table.
  TwoBusEnv env;
  GatewayNode gw{"gw", forward_ids({0x100}), forward_ids({})};
  gw.attach_to(env.bus_a, env.bus_b);

  BitController sender_b{"sender_b"};
  sender_b.attach_to(env.bus_b);
  attach_periodic(sender_b, CanFrame::make(0x2B0, {0x11}), 700.0);

  attack::Attacker flood{"flood", attack::Attacker::traditional_dos()};
  flood.attach_to(env.bus_a);

  env.run(30'000);
  EXPECT_GT(env.bus_a.trace().busy_fraction(0, env.bus_a.now()), 0.8);
  EXPECT_GT(sender_b.stats().frames_sent, 30u);
  EXPECT_GT(env.b_received.size(), 30u);
  EXPECT_EQ(gw.forwarded_a_to_b(), 0u);  // flood frames never forwarded
}

TEST(Gateway, MichiCanOnSideBusProtectsForwardedTraffic) {
  // The routed ID keeps flowing into bus B even while bus A is under a DoS
  // attack that a MichiCAN node on bus A eradicates.
  TwoBusEnv env;
  GatewayNode gw{"gw", forward_ids({0x100}), forward_ids({})};
  gw.attach_to(env.bus_a, env.bus_b);

  const core::IvnConfig ivn{{0x100, 0x173}};
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(env.bus_a);

  attach_periodic(env.sender_a, CanFrame::make(0x100, {0x42}), 1500.0);
  attack::Attacker atk{"attacker", attack::Attacker::targeted_dos(0x050)};
  atk.attach_to(env.bus_a);

  env.run(60'000);
  EXPECT_GE(env.bus_a.log().count(sim::EventKind::BusOff, "attacker"), 2u);
  // Forwarded frames made it to bus B throughout the episode.
  EXPECT_GT(env.b_received.size(), 20u);
}

TEST(Gateway, ExtendedIdCollisionIsDroppedNotForwarded) {
  // Regression for the forward_ids bug: the filter matched on the numeric
  // ID alone, so a 29-bit extended frame whose ID equals a whitelisted
  // 11-bit ID slipped across the gateway.  It must be dropped and counted.
  TwoBusEnv env;
  GatewayNode gw{"gw", forward_ids({0x100}), forward_ids({})};
  gw.attach_to(env.bus_a, env.bus_b);

  env.sender_a.enqueue(CanFrame::make_ext(0x100, {0xDE, 0xAD}));  // collision
  env.sender_a.enqueue(CanFrame::make(0x100, {0x01}));            // routed
  env.run(1'000);

  ASSERT_EQ(env.b_received.size(), 1u);
  EXPECT_FALSE(env.b_received[0].extended);
  EXPECT_EQ(env.b_received[0], CanFrame::make(0x100, {0x01}));
  EXPECT_EQ(gw.forwarded_a_to_b(), 1u);
  EXPECT_EQ(gw.dropped(), 1u);  // the extended collision, accounted for
}

TEST(Gateway, RoutesExtendedIdsAndRtrFrames) {
  // forward_routes matches exact (id, extended) pairs; RTR frames with a
  // routed identifier cross the gateway intact.
  TwoBusEnv env;
  GatewayNode gw{"gw",
                 forward_routes({{0x1ABCDE0, /*extended=*/true},
                                 {0x2F1, /*extended=*/false}}),
                 forward_routes({})};
  gw.attach_to(env.bus_a, env.bus_b);

  env.sender_a.enqueue(CanFrame::make_ext(0x1ABCDE0, {0x11, 0x22, 0x33}));
  env.sender_a.enqueue(CanFrame::make_remote(0x2F1, 4));
  env.sender_a.enqueue(CanFrame::make(0x300, {0x44}));  // not routed
  env.run(1'500);

  ASSERT_EQ(env.b_received.size(), 2u);
  EXPECT_EQ(env.b_received[0], CanFrame::make_ext(0x1ABCDE0, {0x11, 0x22, 0x33}));
  EXPECT_EQ(env.b_received[1], CanFrame::make_remote(0x2F1, 4));
  EXPECT_TRUE(env.b_received[1].rtr);
  EXPECT_EQ(gw.forwarded_a_to_b(), 2u);
  EXPECT_EQ(gw.dropped(), 0u);
}

TEST(Gateway, RouteTableCollisionsAreSymmetric) {
  // The cross-format Drop works both ways: a standard frame colliding with
  // an extended-only route entry is dropped, not ignored and not forwarded.
  TwoBusEnv env;
  GatewayNode gw{"gw", forward_routes({{0x155, /*extended=*/true}}),
                 forward_routes({})};
  gw.attach_to(env.bus_a, env.bus_b);

  env.sender_a.enqueue(CanFrame::make(0x155, {0x99}));  // std collides w/ ext
  env.sender_a.enqueue(CanFrame::make(0x156, {0x98}));  // plain ignore
  env.run(800);

  EXPECT_TRUE(env.b_received.empty());
  EXPECT_EQ(gw.forwarded_a_to_b(), 0u);
  EXPECT_EQ(gw.dropped(), 1u);  // only the collision counts
}

TEST(Gateway, CountsDropsWhenEgressSaturated) {
  // Flood bus B so the gateway's egress queue overflows.
  TwoBusEnv env;
  GatewayNode gw{"gw", forward_ids({0x100}), forward_ids({})};
  gw.attach_to(env.bus_a, env.bus_b);
  attack::Attacker flood_b{"flood_b", attack::Attacker::traditional_dos()};
  flood_b.attach_to(env.bus_b);
  attach_periodic(env.sender_a, CanFrame::make(0x100, {0x01}), 200.0);
  env.run(60'000);
  EXPECT_GT(gw.dropped(), 0u);
}

}  // namespace
}  // namespace mcan::can
