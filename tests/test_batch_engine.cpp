// Directed tests for the word-level batched bit engine.
//
// The batched kernel commits up to 64 bits per round wherever every node's
// contribution is a known constant pattern (transparent horizon) and no
// fault injection lands inside the span.  These tests pin the hard edges:
// stuff runs crossing window boundaries, arbitration decided inside a
// window, counterattack windows, fault-injection fallback, and the
// associativity of splitting one recording into arbitrarily sized windows.
//
// Every run here doubles as contract enforcement: the bus cross-checks each
// committed window's drive patterns against the nodes' live tx_level() and
// throws on any mismatch, so a passing differential test certifies both
// byte-identity and pattern honesty.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/scenarios.hpp"
#include "can/bus.hpp"
#include "can/controller.hpp"
#include "can/fault_injector.hpp"
#include "can/node.hpp"
#include "can/periodic.hpp"
#include "obs/timeline.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace mcan {
namespace {

/// A passive node that caps every batch window at a chosen (optionally
/// randomized) length.  It never drives, never reacts, and is fully
/// transparent — its only effect is to move the window boundaries, which is
/// exactly what the associativity property needs to vary.
class ChokeNode final : public can::CanNode {
 public:
  /// fixed horizon when `fixed` > 0, else random in [1, 64] per probe.
  ChokeNode(sim::BitTime fixed, std::uint64_t seed)
      : fixed_(fixed), rng_(seed) {}

  void tick(sim::BitTime /*now*/) override {}
  [[nodiscard]] sim::BitLevel tx_level() override {
    return sim::BitLevel::Recessive;
  }
  void on_bus_bit(sim::BitLevel /*bus*/) override {}
  [[nodiscard]] sim::BitTime next_activity(
      sim::BitTime /*now*/) const override {
    return can::kNever;
  }
  void on_idle_skip(sim::BitTime /*count*/) override {}
  [[nodiscard]] DrivePattern drive_pattern(sim::BitTime /*now*/) override {
    return {fixed_ > 0 ? fixed_ : rng_.uniform(1, 64), ~0ull};
  }
  [[nodiscard]] sim::BitTime transparent_bits(sim::BitTime /*now*/,
                                              std::uint64_t /*word*/,
                                              sim::BitTime count) override {
    return count;
  }
  void on_bus_word(sim::BitTime /*now*/, std::uint64_t /*word*/,
                   sim::BitTime /*count*/) override {}
  [[nodiscard]] std::string_view name() const override { return "choke"; }

 private:
  sim::BitTime fixed_;
  sim::Rng rng_;
};

/// Everything a recording can differ in: the full serialized event log, the
/// exact waveform, and the two engine perf counters.
struct Recording {
  std::string events;
  std::string wave;
  std::uint64_t batched{};
  std::uint64_t skipped{};
};

struct EngineMode {
  bool fast_path;
  bool batching;
};

constexpr EngineMode kNaive{false, false};
constexpr EngineMode kBatched{false, true};  // batching isolated from skipping
constexpr EngineMode kFull{true, true};

/// Two controllers with maximally stuff-heavy periodic traffic: all-zero and
/// all-ones payloads produce a stuff bit every five wire bits, so windows of
/// every length land boundaries inside stuff runs.  IDs 0x400/0x401 differ
/// only in the last arbitration bit, so simultaneous enqueues decide
/// arbitration as late as possible.
Recording record_stuffy(EngineMode mode, sim::BitTime choke,
                        std::uint64_t choke_seed, double phase_b = 95.0,
                        const can::FaultSpec* fault = nullptr) {
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  bus.set_fast_path(mode.fast_path);
  bus.set_batching(mode.batching);

  can::BitController a{"ecu-a"};
  can::BitController b{"ecu-b"};
  a.attach_to(bus);
  b.attach_to(bus);

  can::CanFrame fa;
  fa.id = 0x400;
  fa.dlc = 8;  // data stays all-0x00: dominant stuff runs
  can::CanFrame fb;
  fb.id = 0x401;
  fb.dlc = 8;
  fb.data.fill(0xFF);  // recessive stuff runs
  can::attach_periodic(a, fa, /*period_bits=*/700.0, /*phase_bits=*/95.0);
  can::attach_periodic(b, fb, /*period_bits=*/700.0, phase_b);

  ChokeNode ch{choke, choke_seed};
  bus.attach(ch);

  std::unique_ptr<can::FaultInjector> injector;
  if (fault != nullptr) {
    injector = std::make_unique<can::FaultInjector>(*fault, 7);
    bus.set_fault_injector(injector.get());
  }

  bus.run(sim::Bits{6000});
  return {obs::to_jsonl(bus.log()),
          bus.trace().render(0, bus.trace().size()), bus.bits_batched(),
          bus.bits_skipped()};
}

TEST(BatchEngine, StuffRunsByteIdenticalAtEveryWindowAlignment) {
  // Fixed choke k makes uncontested windows exactly k bits long, so sweeping
  // k slides the word boundary across every stuff-run alignment — including
  // a boundary straight through the middle of a five-bit run and directly
  // before/after the inserted stuff bit.
  const auto reference = record_stuffy(kNaive, 0, 1);
  EXPECT_EQ(reference.batched, 0u);
  for (sim::BitTime k = 8; k <= 64; ++k) {
    const auto r = record_stuffy(kBatched, k, 1);
    ASSERT_EQ(reference.events, r.events) << "choke=" << k;
    ASSERT_EQ(reference.wave, r.wave) << "choke=" << k;
    EXPECT_GT(r.batched, 0u) << "choke=" << k;
  }
}

TEST(BatchEngine, ArbitrationLossInsideProbedWindows) {
  // Phase 95 starts both transmitters on the same SOF: arbitration runs to
  // the last ID bit (0x400 vs 0x401), where ecu-b loses.  The transparency
  // scan must truncate ecu-b's window at exactly that bit; the choke sweep
  // again slides the boundary across the decision point (including a window
  // whose last bit is the losing bit).
  const auto reference = record_stuffy(kNaive, 0, 1, /*phase_b=*/95.0);
  ASSERT_NE(reference.events.find("ArbitrationLost"), std::string::npos)
      << "scenario must actually contest arbitration";
  for (sim::BitTime k = 8; k <= 64; k += 7) {
    const auto r = record_stuffy(kBatched, k, 1, /*phase_b=*/95.0);
    ASSERT_EQ(reference.events, r.events) << "choke=" << k;
    ASSERT_EQ(reference.wave, r.wave) << "choke=" << k;
  }
}

TEST(BatchEngine, HorizonSplitAssociativityPropertySweep) {
  // Splitting one recording into randomly sized windows (1..64 bits, the
  // sub-kMinBatch draws force per-bit fallback rounds in between) must
  // compose to the same recording as unsplit batching and as no batching:
  // the engine is associative over window boundaries.
  const auto reference = record_stuffy(kNaive, 0, 1);
  const auto unsplit = record_stuffy(kBatched, 64, 1);
  EXPECT_EQ(reference.events, unsplit.events);
  EXPECT_EQ(reference.wave, unsplit.wave);
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const auto r = record_stuffy(kBatched, 0, seed);
    ASSERT_EQ(reference.events, r.events) << "seed=" << seed;
    ASSERT_EQ(reference.wave, r.wave) << "seed=" << seed;
  }
  // The full engine (skipping + batching) composes too.
  const auto full = record_stuffy(kFull, 64, 1);
  EXPECT_EQ(reference.events, full.events);
  EXPECT_EQ(reference.wave, full.wave);
}

TEST(BatchEngine, ScheduledFlipVetoesBatchingAndStaysByteIdentical) {
  // A scheduled flip depends on the per-bit wire position (frame-relative
  // addressing), so the injector vetoes every batch window outright: the
  // engine must fall back to per-bit stepping for the whole recording and
  // still reproduce the naive recording exactly.
  can::FaultSpec fault;
  can::ScheduledFlip flip;
  flip.frame = 2;
  flip.field = can::Field::Data;
  flip.bit = 13;
  fault.flips.push_back(flip);

  const auto reference = record_stuffy(kNaive, 0, 1, 95.0, &fault);
  const auto batched = record_stuffy(kBatched, 64, 1, 95.0, &fault);
  EXPECT_EQ(reference.events, batched.events);
  EXPECT_EQ(reference.wave, batched.wave);
  EXPECT_EQ(batched.batched, 0u)
      << "scheduled flips must force full per-bit fallback";
  ASSERT_NE(reference.events.find("FaultInjected"), std::string::npos);
}

TEST(BatchEngine, StuckWindowCapsBatchingAroundItself) {
  // A stuck-at window only vetoes batching *inside* its span; before and
  // after it the word engine must keep running, and the recording must stay
  // byte-identical through the stuck region's error signalling.
  can::FaultSpec fault;
  fault.stuck.push_back({1500, 40, sim::BitLevel::Dominant});

  const auto reference = record_stuffy(kNaive, 0, 1, 95.0, &fault);
  const auto batched = record_stuffy(kBatched, 64, 1, 95.0, &fault);
  EXPECT_EQ(reference.events, batched.events);
  EXPECT_EQ(reference.wave, batched.wave);
  EXPECT_GT(batched.batched, 0u)
      << "batching must resume outside the stuck window";
}

TEST(BatchEngine, CounterattackWindowsNeverOpenMidWord) {
  // An armed MichiCAN monitor needs every in-frame bit stepped (its
  // counterattack must start on an exact bit), so a defended node vetoes
  // every batch probe: counterattack windows can never open inside a
  // committed word.  The veto must cost nothing in fidelity.
  auto make = [](bool batching) {
    auto spec = analysis::table2_experiment(2);
    spec.duration = sim::Millis{200.0};
    spec.capture_timeline = true;
    spec.batching = batching;
    return analysis::run_experiment(spec);
  };
  const auto batched = make(true);
  const auto naive = make(false);
  ASSERT_GT(batched.counterattacks, 0u);
  EXPECT_EQ(batched.events_jsonl, naive.events_jsonl);
  EXPECT_EQ(batched.metrics.to_json(), naive.metrics.to_json());
  EXPECT_EQ(batched.bits_batched, 0u)
      << "a defense-enabled node must veto every batch window";
}

TEST(BatchEngine, SaturatingBitArithmeticNeverWraps) {
  // Satellite fix: soak-length accumulations go through sim::sat_add, which
  // clamps at the BitTime maximum instead of wrapping to a tiny horizon.
  constexpr sim::BitTime kMax = std::numeric_limits<sim::BitTime>::max();
  static_assert(sim::sat_add(kMax, 1) == kMax);
  static_assert(sim::sat_add(kMax - 5, 10) == kMax);
  static_assert(sim::sat_add(kMax, kMax) == kMax);
  static_assert(sim::sat_add(3, 4) == 7);
  static_assert(sim::sat_add(0, kMax) == kMax);
  EXPECT_EQ(sim::sat_add(kMax - 1, 1), kMax);

  // The run() end marker is the guarded call site: asking for kNever bits
  // from a nonzero `now` must clamp, not wrap to an end before `now` (which
  // would silently turn run() into a no-op).
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  bus.set_fast_path(false);
  bus.set_batching(false);
  can::BitController idle{"idle"};
  idle.attach_to(bus);
  bus.run(sim::Bits{50});
  ASSERT_EQ(bus.now(), 50u);
  // kMax bits from now=50 would overflow unguarded: 50 + kMax wraps to 49.
  // With sat_add the end clamps to kMax and the loop keeps simulating; run
  // a bounded slice by checking the end computation directly instead.
  EXPECT_EQ(sim::sat_add(bus.now(), kMax), kMax);
}

}  // namespace
}  // namespace mcan
