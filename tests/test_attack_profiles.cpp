// Toolkit attack profiles: flood pacing, seeded fuzzing, trace-driven
// replay — plus the determinism contracts the campaign layer relies on
// (same seed -> identical frames; record -> serialize -> parse -> replay is
// a fixed point on every engine tier; reports are jobs-invariant).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/scenarios.hpp"
#include "attack/profiles.hpp"
#include "can/bus.hpp"
#include "can/types.hpp"
#include "restbus/candump.hpp"
#include "runner/campaign.hpp"
#include "runner/report.hpp"

namespace mcan {
namespace {

constexpr sim::BusSpeed kSpeed{500'000};

attack::AttackerConfig flood_config(double rate_fps) {
  attack::AttackerConfig cfg;
  cfg.ids = {0x123};
  cfg.profile = attack::AttackProfile::Flood;
  cfg.rate_fps = rate_fps;
  return cfg;
}

TEST(FloodAttacker, RateResolvesAgainstBusSpeed) {
  // 100 frames/s at 500 kbit/s = one injection every 5000 bit times.
  can::WiredAndBus bus{kSpeed};
  attack::FloodAttacker flood{"flood", flood_config(100.0), bus.speed()};
  flood.attach_to(bus);
  restbus::CandumpRecorder rec;
  rec.attach_to(bus);
  bus.run(50'000);
  EXPECT_GE(flood.frames_injected(), 9u);
  EXPECT_LE(flood.frames_injected(), 11u);
  EXPECT_EQ(flood.injected_ids(), (std::vector<can::CanId>{0x123}));
}

TEST(FloodAttacker, ZeroRateKeepsContinuousFloodSemantics) {
  // rate 0 + period 0 is the scripted continuous flood: the queue is kept
  // full, so the bus carries back-to-back frames instead of 10 paced ones.
  can::WiredAndBus bus{kSpeed};
  attack::FloodAttacker flood{"flood", flood_config(0.0), bus.speed()};
  flood.attach_to(bus);
  restbus::CandumpRecorder rec;
  rec.attach_to(bus);
  bus.run(50'000);
  EXPECT_GT(flood.frames_injected(), 100u);
}

attack::AttackerConfig fuzz_config(std::uint64_t seed) {
  attack::AttackerConfig cfg;
  cfg.profile = attack::AttackProfile::Fuzz;
  cfg.rate_fps = 400.0;
  cfg.fuzz_id_min = 0x000;
  cfg.fuzz_id_max = can::kMaxStdId;
  cfg.fuzz_dlc_min = 0;
  cfg.fuzz_dlc_max = 8;
  cfg.seed = seed;
  return cfg;
}

std::string run_fuzz(std::uint64_t seed, std::uint64_t* injected = nullptr,
                     std::vector<can::CanId>* ids = nullptr) {
  can::WiredAndBus bus{kSpeed};
  attack::FuzzAttacker fuzz{"fuzz", fuzz_config(seed), bus.speed()};
  fuzz.attach_to(bus);
  restbus::CandumpRecorder rec;
  rec.attach_to(bus);
  bus.run(100'000);
  if (injected != nullptr) *injected = fuzz.frames_injected();
  if (ids != nullptr) *ids = fuzz.injected_ids();
  return rec.dump();
}

TEST(FuzzAttacker, SameSeedReproducesTheFrameSequence) {
  std::uint64_t injected_a = 0;
  std::uint64_t injected_b = 0;
  std::vector<can::CanId> ids_a;
  std::vector<can::CanId> ids_b;
  const std::string a = run_fuzz(7, &injected_a, &ids_a);
  const std::string b = run_fuzz(7, &injected_b, &ids_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(injected_a, injected_b);
  EXPECT_EQ(ids_a, ids_b);
  ASSERT_GT(injected_a, 10u);
  // injected_ids() reports the runtime-observed set in a stable order.
  EXPECT_TRUE(std::is_sorted(ids_a.begin(), ids_a.end()));
  EXPECT_EQ(std::adjacent_find(ids_a.begin(), ids_a.end()), ids_a.end());
}

TEST(FuzzAttacker, DifferentSeedsDiverge) {
  EXPECT_NE(run_fuzz(7), run_fuzz(8));
}

TEST(FuzzAttacker, ExtendedOptionDrawsFromThe29BitSpace) {
  attack::AttackerConfig cfg = fuzz_config(3);
  cfg.extended = true;
  cfg.fuzz_id_min = can::kMaxStdId + 1;  // force genuinely extended values
  cfg.fuzz_id_max = can::kMaxExtId;

  can::WiredAndBus bus{kSpeed};
  attack::FuzzAttacker fuzz{"fuzz-ext", cfg, bus.speed()};
  fuzz.attach_to(bus);
  restbus::CandumpRecorder rec;
  rec.attach_to(bus);
  bus.run(100'000);
  ASSERT_GT(fuzz.frames_injected(), 5u);
  for (const auto& e : rec.trace()) {
    EXPECT_TRUE(e.frame.extended);
    EXPECT_GT(e.frame.id, can::kMaxStdId);
  }
  // Extended IDs are also reported via their 11-bit arbitration base, the
  // form the MichiCAN monitor observes during arbitration.
  const auto ids = fuzz.injected_ids();
  EXPECT_TRUE(std::any_of(ids.begin(), ids.end(), [](can::CanId id) {
    return id <= can::kMaxStdId;
  }));
  EXPECT_TRUE(std::any_of(ids.begin(), ids.end(), [](can::CanId id) {
    return id > can::kMaxStdId;
  }));
}

TEST(ReplayAttacker, InjectsEveryTraceFrameAtItsTimestamp) {
  std::vector<restbus::CandumpEntry> trace;
  trace.push_back({0.002, "can0", can::CanFrame::make(0x173, {0x01})});
  trace.push_back({0.004, "can0", can::CanFrame::make(0x173, {0x02})});
  trace.push_back({0.006, "can0", can::CanFrame::make(0x2A0, {0x03})});

  attack::AttackerConfig cfg;
  cfg.profile = attack::AttackProfile::Replay;
  cfg.replay_trace = restbus::to_candump(trace);
  cfg.replay_format = restbus::TraceFormat::Candump;

  can::WiredAndBus bus{kSpeed};
  attack::ReplayAttacker replay{"replay", cfg, bus.speed()};
  replay.attach_to(bus);
  restbus::CandumpRecorder rec;
  rec.attach_to(bus);
  bus.run_for(sim::Millis{10.0});

  EXPECT_EQ(replay.frames_injected(), 3u);
  EXPECT_EQ(replay.injected_ids(), (std::vector<can::CanId>{0x173, 0x2A0}));
  ASSERT_EQ(rec.trace().size(), 3u);
  // Timestamps are rebased to the first entry (candump logs carry epoch
  // times), but the 2 ms inter-frame gaps must survive replay exactly:
  // recordings complete one transmission after each scheduled enqueue.
  const double gap1 = rec.trace()[1].t_seconds - rec.trace()[0].t_seconds;
  const double gap2 = rec.trace()[2].t_seconds - rec.trace()[1].t_seconds;
  EXPECT_NEAR(gap1, 0.002, 0.0002);
  EXPECT_NEAR(gap2, 0.002, 0.0002);
  EXPECT_EQ(attack::primary_attack_id(cfg), 0x173u);
}

/// Replay `text` through a dedicated controller on the selected engine
/// tier and return the recorded trace re-serialized as candump text.
std::string replay_once(const std::string& text, bool fast_path,
                        bool batching) {
  can::WiredAndBus bus{kSpeed};
  bus.set_fast_path(fast_path);
  bus.set_batching(batching);
  can::BitController player{"player"};
  player.attach_to(bus);
  restbus::attach_candump_replay(player, restbus::parse_candump(text),
                                 bus.speed());
  restbus::CandumpRecorder rec;
  rec.attach_to(bus);
  bus.run_for(sim::Millis{20.0});
  return rec.dump();
}

TEST(ReplayRoundTrip, RecordSerializeParseReplayByteIdenticalOnEveryTier) {
  // record -> to_candump -> parse_candump -> replay: the recorded document
  // must be byte-identical on repeated runs and across all three engine
  // tiers, and so must a second round-trip that replays the recording
  // itself (recordings are valid replay inputs).
  std::vector<restbus::CandumpEntry> source;
  source.push_back({0.0005, "can0", can::CanFrame::make(0x0B4, {0xDE, 0xAD})});
  source.push_back({0.0005, "can0", can::CanFrame::make(0x1A0, {0xBE})});
  source.push_back({0.0020, "can0", can::CanFrame::make(0x2C5, {})});
  source.push_back({0.0040, "can0", can::CanFrame::make(0x3D2, {0x01, 0x02,
                                                               0x03, 0x04})});
  const std::string text = restbus::to_candump(source);

  constexpr std::pair<bool, bool> kTiers[] = {
      {false, false}, {true, false}, {true, true}};
  std::vector<std::string> recordings;
  std::vector<std::string> second_pass;
  for (const auto& [fast_path, batching] : kTiers) {
    const std::string rec = replay_once(text, fast_path, batching);
    ASSERT_FALSE(rec.empty());
    EXPECT_EQ(rec, replay_once(text, fast_path, batching))
        << "replay nondeterministic (fast_path=" << fast_path
        << " batching=" << batching << ")";
    // The recording parses back and replays: a second round-trip, equally
    // deterministic.
    const std::string again = replay_once(rec, fast_path, batching);
    EXPECT_EQ(again, replay_once(rec, fast_path, batching));
    recordings.push_back(rec);
    second_pass.push_back(again);
  }
  ASSERT_EQ(recordings.size(), 3u);
  EXPECT_EQ(recordings[0], recordings[1]) << "naive vs quiescence";
  EXPECT_EQ(recordings[1], recordings[2]) << "quiescence vs batched";
  EXPECT_EQ(second_pass[0], second_pass[1]);
  EXPECT_EQ(second_pass[1], second_pass[2]);
  // All four source frames survive the round-trip.
  EXPECT_EQ(restbus::parse_candump(recordings[0]).size(), source.size());
}

TEST(AttackProfiles, ValidateRejectsBadProfileKnobs) {
  const auto base = [] {
    auto spec = analysis::table2_experiment(2);
    return spec;
  }();
  {
    auto spec = base;
    spec.attackers[0].profile = attack::AttackProfile::Fuzz;
    spec.attackers[0].fuzz_id_min = 0x100;
    spec.attackers[0].fuzz_id_max = 0x0FF;
    EXPECT_THROW(analysis::validate(spec), std::invalid_argument);
  }
  {
    auto spec = base;
    spec.attackers[0].profile = attack::AttackProfile::Replay;
    spec.attackers[0].replay_trace.clear();
    EXPECT_THROW(analysis::validate(spec), std::invalid_argument);
  }
  {
    auto spec = base;
    spec.attackers[0].profile = attack::AttackProfile::Replay;
    spec.attackers[0].replay_trace = "(nonsense\n";
    EXPECT_THROW(analysis::validate(spec), std::invalid_argument);
  }
  {
    auto spec = base;
    spec.attackers[0].rate_fps = -1.0;
    EXPECT_THROW(analysis::validate(spec), std::invalid_argument);
  }
  {
    auto spec = base;
    spec.trace_replay.text = "0.1,064,1,00\n";  // CSV text, Candump format
    EXPECT_THROW(analysis::validate(spec), std::invalid_argument);
  }
}

TEST(AttackProfiles, CampaignReportsJobsInvariantAcrossAtkScenarios) {
  const char* names[] = {"atk-flood-dos",    "atk-flood-paced",
                         "atk-fuzz-std",     "atk-fuzz-ext",
                         "atk-replay-spoof", "atk-replay-csv"};
  runner::CampaignConfig cfg;
  for (const char* name : names) {
    auto spec = analysis::ScenarioRegistry::built_in().make(name);
    spec.duration = sim::Millis{300.0};
    cfg.specs.push_back(std::move(spec));
  }
  cfg.seeds = {0, 2};
  runner::JsonOptions opts;  // deterministic section only

  cfg.jobs = 1;
  const std::string one = runner::to_json(runner::run_campaign(cfg), opts);
  cfg.jobs = 4;
  const std::string four = runner::to_json(runner::run_campaign(cfg), opts);
  EXPECT_EQ(one, four);
}

}  // namespace
}  // namespace mcan
