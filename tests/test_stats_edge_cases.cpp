// Edge cases of the statistics kernel every campaign aggregate rests on:
// empty samples, single samples (stddev must be 0, never NaN), duplicate
// values, and out-of-range percentile ranks (which used to index out of
// bounds before the clamp in sim::percentile).
#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcan::sim {
namespace {

TEST(StatsEdgeCases, EmptyInputYieldsAllZeroSummary) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(StatsEdgeCases, SingleSampleHasZeroStddevNotNaN) {
  const auto s = summarize({24.9});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 24.9);
  EXPECT_DOUBLE_EQ(s.min, 24.9);
  EXPECT_DOUBLE_EQ(s.max, 24.9);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_FALSE(std::isnan(s.stddev));
}

TEST(StatsEdgeCases, IdenticalSamplesHaveZeroSpread) {
  const auto s = summarize({7.0, 7.0, 7.0, 7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(StatsEdgeCases, SampleStddevUsesBesselCorrection) {
  // Known case: {1, 2, 3, 4} has sample variance 5/3.
  const auto s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.stddev, std::sqrt(5.0 / 3.0));
}

TEST(StatsEdgeCases, PercentileOfEmptyIsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(StatsEdgeCases, PercentileOfSingleSampleIsThatSample) {
  for (const double p : {0.0, 25.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile({42.0}, p), 42.0) << p;
  }
}

TEST(StatsEdgeCases, PercentileEndpointsAreMinAndMax) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(StatsEdgeCases, OutOfRangeRanksClampToEndpoints) {
  // Regression: p < 0 used to cast a negative rank to std::size_t and read
  // far out of bounds; p > 100 overran the top of the sorted sample.
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 250.0), 3.0);
}

TEST(StatsEdgeCases, DuplicateValuesInterpolateLinearly) {
  // Sorted: {1, 1, 2, 2}.  The median rank 1.5 sits between a 1 and a 2,
  // so linear interpolation must give exactly 1.5 — not snap to a dup.
  EXPECT_DOUBLE_EQ(percentile({2.0, 1.0, 2.0, 1.0}, 50.0), 1.5);
  // All-duplicate input is flat at every rank.
  for (const double p : {0.0, 37.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile({9.0, 9.0, 9.0}, p), 9.0) << p;
  }
}

TEST(StatsEdgeCases, InterpolationBetweenAdjacentRanks) {
  // Sorted {10, 20, 30, 40}: p90 -> rank 2.7 -> 30 + 0.7 * 10 = 37.
  EXPECT_NEAR(percentile({40.0, 10.0, 30.0, 20.0}, 90.0), 37.0, 1e-12);
}

}  // namespace
}  // namespace mcan::sim
