// Property sweep over the fault-injection layer (paper Sec. IV-E): on a
// realistically noisy bus (BER well below 1e-3) sporadic bit flips must
// never confine the MichiCAN defender — its TEC stays untouched and it
// never reaches bus-off — while the counterattack keeps driving attackers
// off the bus.
#include <gtest/gtest.h>

#include "analysis/experiments.hpp"
#include "runner/fault_sweep.hpp"
#include "runner/report.hpp"

namespace mcan {
namespace {

TEST(FaultSweepProperty, LowBerNeverBussesOffTheDefender) {
  for (const double ber : {1e-5, 1e-4, 9e-4}) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      auto spec = analysis::fault_variant(analysis::table2_experiment(2), ber);
      spec.seed = seed * 7919 + 1;
      const auto res = analysis::run_experiment(spec);
      SCOPED_TRACE("ber=" + std::to_string(ber) +
                   " seed=" + std::to_string(spec.seed));
      // The defender is a silent receiver here: receive errors from line
      // noise touch its REC (bounded by the 8-bit register), never its TEC,
      // so it can never be confined.
      EXPECT_FALSE(res.defender_bus_off);
      EXPECT_EQ(res.defender_tec, 0);
      EXPECT_LE(res.defender_rec, 255);
      // The defense itself keeps working through the noise.
      EXPECT_GT(res.attacks_detected, 0u);
      ASSERT_EQ(res.attackers.size(), 1u);
      EXPECT_GT(res.attackers[0].busoff_count, 0u);
    }
  }
}

TEST(FaultSweepProperty, DetectionDegradesGracefullyNotCatastrophically) {
  // Pooled over seeds, the arbitration monitor must still catch nearly
  // every attack frame at BER 1e-3 — a 1.5 % miss rate in the observed
  // runs; assert a generous 90 % floor so the property is robust.
  runner::FaultSweepConfig cfg;
  cfg.base_specs = {analysis::table2_experiment(2)};
  cfg.bers = {0.0, 1e-3};
  cfg.seeds = {0, 4};
  cfg.jobs = 1;
  const auto rep = runner::run_fault_sweep(cfg);
  ASSERT_EQ(rep.rows.size(), 2u);
  EXPECT_GT(rep.rows[0].detection_rate, 0.99);
  EXPECT_GT(rep.rows[1].detection_rate, 0.90);
  // Noise can only slow the bus-off cycle down, not speed it up.
  EXPECT_GE(rep.rows[1].busoff_mean_delta_ms, 0.0);
  // No benign ID was ever flagged in these isolated scenarios.
  EXPECT_EQ(rep.rows[0].fp_rate, 0.0);
  EXPECT_EQ(rep.rows[1].fp_rate, 0.0);
}

TEST(FaultSweepProperty, SweepIsDeterministicAcrossWorkerCounts) {
  runner::FaultSweepConfig cfg;
  cfg.base_specs = {analysis::table2_experiment(4)};
  cfg.bers = {0.0, 1e-4};
  cfg.seeds = {0, 3};
  for (auto& s : cfg.base_specs) s.duration = sim::Millis{500.0};

  cfg.jobs = 1;
  const auto serial = runner::run_fault_sweep(cfg);
  cfg.jobs = 4;
  const auto parallel = runner::run_fault_sweep(cfg);
  EXPECT_EQ(runner::to_json(serial), runner::to_json(parallel));
}

}  // namespace
}  // namespace mcan
