// Unit tests for the CRC-15/CAN implementation.
#include "can/crc15.hpp"

#include <gtest/gtest.h>

#include "can/bitstream.hpp"
#include "can/frame.hpp"
#include "sim/rng.hpp"

namespace mcan::can {
namespace {

// Reference bit-by-bit implementation straight from ISO 11898-1 pseudocode,
// kept deliberately independent of the production code path.
std::uint16_t reference_crc(const std::vector<std::uint8_t>& bits) {
  std::uint16_t crc = 0;
  for (auto b : bits) {
    const std::uint16_t crcnxt =
        static_cast<std::uint16_t>(b ^ ((crc >> 14) & 1));
    crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFE);
    if (crcnxt) crc ^= kCrc15Poly;
    crc &= 0x7FFF;
  }
  return crc;
}

TEST(Crc15, EmptyInputIsZero) {
  EXPECT_EQ(crc15({}), 0);
}

TEST(Crc15, SingleZeroBit) {
  const std::uint8_t bit = 0;
  EXPECT_EQ(crc15({&bit, 1}), 0);
}

TEST(Crc15, SingleOneBitEqualsPolynomial) {
  const std::uint8_t bit = 1;
  EXPECT_EQ(crc15({&bit, 1}), kCrc15Poly);
}

TEST(Crc15, MatchesReferenceOnRandomStreams) {
  sim::Rng rng{42};
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> bits;
    const auto len = rng.uniform(1, 120);
    for (std::uint64_t i = 0; i < len; ++i) {
      bits.push_back(static_cast<std::uint8_t>(rng.uniform(0, 1)));
    }
    EXPECT_EQ(crc15({bits.data(), bits.size()}), reference_crc(bits));
  }
}

TEST(Crc15, IncrementalFeedMatchesBatch) {
  sim::Rng rng{7};
  std::vector<std::uint8_t> bits;
  for (int i = 0; i < 64; ++i) {
    bits.push_back(static_cast<std::uint8_t>(rng.uniform(0, 1)));
  }
  Crc15 inc;
  for (auto b : bits) inc.feed(b);
  EXPECT_EQ(inc.value(), crc15({bits.data(), bits.size()}));
}

TEST(Crc15, DetectsEverySingleBitFlipInAFrame) {
  // CRC-15 must detect all single-bit errors (Hamming distance >= 2).
  const auto frame = CanFrame::make(0x123, {0xDE, 0xAD, 0xBE, 0xEF});
  auto bits = unstuffed_bits(frame);
  const int data_end = stuffed_region_length(frame.dlc, frame.rtr) - kCrcBits;
  const auto good = crc15({bits.data(), static_cast<std::size_t>(data_end)});
  for (int i = 0; i < data_end; ++i) {
    auto flipped = bits;
    flipped[static_cast<std::size_t>(i)] ^= 1;
    EXPECT_NE(crc15({flipped.data(), static_cast<std::size_t>(data_end)}),
              good)
        << "undetected flip at bit " << i;
  }
}

TEST(Crc15, ResetRestoresInitialState) {
  Crc15 crc;
  crc.feed(1);
  crc.feed(0);
  crc.reset();
  EXPECT_EQ(crc.value(), 0);
}

}  // namespace
}  // namespace mcan::can
