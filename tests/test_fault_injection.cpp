// Robustness and false-positive analysis under injected faults.
//
// Paper Sec. IV-E: "although MichiCAN could potentially flag a legitimate
// node as an attacker due to a bit flip, a node needs to encounter 32
// consecutive errors for the TEC to reach a level that would trigger a
// bus-off condition.  In case of sporadic errors, the likelihood of hitting
// this threshold is near zero."  These tests inject sporadic dominant
// glitches (the only disturbance a wired-AND bus physically allows) and
// check that no benign node is ever confined.
#include <gtest/gtest.h>

#include "attack/attacker.hpp"
#include "can/bus.hpp"
#include "can/periodic.hpp"
#include "core/michican_node.hpp"
#include "helpers.hpp"
#include "restbus/replay.hpp"
#include "restbus/vehicles.hpp"
#include "sim/rng.hpp"

namespace mcan {
namespace {

/// Injects single-bit dominant glitches at random times with a given rate.
class NoiseInjector final : public can::CanNode {
 public:
  NoiseInjector(double rate_per_bit, std::uint64_t seed)
      : rate_(rate_per_bit), rng_(seed) {}

  sim::BitLevel tx_level() override {
    return fire_ ? sim::BitLevel::Dominant : sim::BitLevel::Recessive;
  }
  void tick(sim::BitTime) override {
    fire_ = rng_.chance(rate_);
    if (fire_) ++count_;
  }
  void on_bus_bit(sim::BitLevel) override {}
  [[nodiscard]] std::string_view name() const override { return "noise"; }
  [[nodiscard]] std::uint64_t glitches() const noexcept { return count_; }

 private:
  double rate_;
  sim::Rng rng_;
  bool fire_{false};
  std::uint64_t count_{0};
};

TEST(FaultInjection, SporadicGlitchesNeverBusOffBenignNodes) {
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  const auto matrix =
      restbus::vehicle_matrix(restbus::Vehicle::D, 1)
          .without(0x173)
          .scaled_to_load(50e3, 0.25);
  restbus::RestbusSim rb{matrix, bus};

  const core::IvnConfig ivn{
      restbus::vehicle_matrix(restbus::Vehicle::D, 1).ecu_ids()};
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);

  NoiseInjector noise{1e-4, 77};  // ~1 glitch per 10k bits
  bus.attach(noise);

  bus.run_for(sim::Millis{2000.0});

  EXPECT_FALSE(rb.any_bus_off());
  EXPECT_FALSE(def.controller().is_bus_off());
  // Some frames were corrupted and retransmitted, but traffic flows.
  EXPECT_GT(rb.total_stats().frames_sent, 50u);
  for (const auto& ecu : rb.ecus()) {
    EXPECT_LT(ecu->tec(), 128) << ecu->name() << " went error-passive";
  }
}

TEST(FaultInjection, GlitchInducedFalseDetectionIsHarmless) {
  // Force the worst case deterministically: a glitch flips a legitimate
  // ID's recessive bit to dominant *inside the arbitration field*, so the
  // monitor sees a malicious ID and counterattacks a benign transmission.
  // The benign ECU must shrug it off: one error, one retransmission.
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  const core::IvnConfig ivn{{0x100, 0x173, 0x300}};
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);

  can::BitController victim{"victim"};
  victim.attach_to(bus);
  int delivered = 0;
  def.controller().set_rx_callback(
      [&](const can::CanFrame&, sim::BitTime) { ++delivered; });

  // 0x100 = 00100000000b.  Flipping ID bit 4 (recessive -> dominant) yields
  // 0x000-prefix 0b00000...: the victim simply LOSES ARBITRATION to the
  // glitch and the monitor chases a ghost frame.  Flipping a later bit
  // (e.g. making the observed prefix 0x000xx) lands in the defender's DoS
  // range.  Either way the victim must survive.
  test::PulseInjector glitch;
  // The victim enqueues at t=0; integration takes 11 bits, SOF at bit 12,
  // ID bits at 13..23.  Glitch ID bit index 9 (raw bit 21: 0x100 has no
  // stuff bits before it).
  glitch.pulse(21, 1);
  bus.attach(glitch);

  victim.enqueue(can::CanFrame::make(0x100, {0x42}));
  bus.run(2000);

  EXPECT_EQ(delivered, 1);  // the retransmission made it
  EXPECT_FALSE(victim.is_bus_off());
  EXPECT_LE(victim.tec(), 8);  // at most one error charged, then -1 decay
}

TEST(FaultInjection, BurstGlitchesDelayButDoNotKill) {
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  can::BitController tx{"tx"};
  can::BitController rx{"rx"};
  tx.attach_to(bus);
  rx.attach_to(bus);
  int delivered = 0;
  rx.set_rx_callback([&](const can::CanFrame&, sim::BitTime) { ++delivered; });

  NoiseInjector noise{5e-3, 1234};  // heavy noise: 1 glitch per 200 bits
  bus.attach(noise);
  can::attach_periodic(tx, can::CanFrame::make(0x123, {0xAA, 0xBB}), 1000.0);
  bus.run(100'000);

  EXPECT_GT(delivered, 60);          // most cycles still deliver
  EXPECT_FALSE(tx.is_bus_off());     // errors decay faster than they build
  EXPECT_GT(tx.stats().tx_errors, 5u);
}

TEST(FaultInjection, DefenderSurvivesGlitchStormDuringAttack) {
  // Noise + active DoS at the same time: the defense must still win and
  // the defender must stay healthy.
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  const core::IvnConfig ivn{{0x100, 0x173, 0x300}};
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);
  attack::Attacker atk{"attacker", attack::Attacker::targeted_dos(0x064)};
  atk.attach_to(bus);
  NoiseInjector noise{2e-4, 99};
  bus.attach(noise);

  bus.run(50'000);
  EXPECT_GE(bus.log().count(sim::EventKind::BusOff, "attacker"), 2u);
  EXPECT_FALSE(def.controller().is_bus_off());
}

}  // namespace
}  // namespace mcan
