// Forensics digest tests: per-node statistics and attack-episode
// reconstruction from synthetic and real event logs.
#include "analysis/forensics.hpp"

#include <gtest/gtest.h>

#include "attack/attacker.hpp"
#include "can/bus.hpp"
#include "core/michican_node.hpp"

namespace mcan::analysis {
namespace {

using sim::EventKind;

sim::EventLog synthetic_log() {
  sim::EventLog log;
  auto push = [&](sim::BitTime at, const char* node, EventKind k,
                  std::uint32_t id = 0, std::int64_t a = 0) {
    log.push({at, node, k, id, a, 0, {}});
  };
  push(10, "atk", EventKind::FrameTxStart, 0x64);
  push(14, "def", EventKind::AttackDetected, 0x64, 4);
  push(15, "def", EventKind::CounterattackStart, 0x64, 4);
  push(22, "def", EventKind::CounterattackEnd, 0x64);
  push(23, "atk", EventKind::TxError, 0x64,
       static_cast<std::int64_t>(can::ErrorType::Bit));
  push(50, "atk", EventKind::FrameTxStart, 0x64);
  push(54, "def", EventKind::AttackDetected, 0x64, 4);
  push(55, "def", EventKind::CounterattackStart, 0x64, 4);
  push(63, "atk", EventKind::TxError, 0x64,
       static_cast<std::int64_t>(can::ErrorType::Stuff));
  push(90, "atk", EventKind::BusOff, 0x64);
  push(200, "peer", EventKind::FrameTxStart, 0x300);
  push(260, "peer", EventKind::FrameTxSuccess, 0x300);
  return log;
}

TEST(Forensics, EpisodeReconstruction) {
  const auto report = analyze(synthetic_log());
  ASSERT_EQ(report.episodes.size(), 1u);
  const auto& ep = report.episodes[0];
  EXPECT_EQ(ep.attacker_id, 0x64u);
  EXPECT_EQ(ep.first_detection, 15u);
  EXPECT_EQ(ep.counterattacks, 2u);
  EXPECT_TRUE(ep.eradicated);
  EXPECT_EQ(ep.bus_off, 90u);
}

TEST(Forensics, PerNodeCounters) {
  const auto report = analyze(synthetic_log());
  const auto* atk = report.find("atk");
  ASSERT_NE(atk, nullptr);
  EXPECT_EQ(atk->frames_attempted, 2u);
  EXPECT_EQ(atk->frames_completed, 0u);
  EXPECT_EQ(atk->tx_errors, 2u);
  EXPECT_EQ(atk->bus_offs, 1u);
  EXPECT_DOUBLE_EQ(atk->destruction_ratio(), 1.0);
  EXPECT_EQ(atk->tx_error_types.at(can::ErrorType::Bit), 1u);
  EXPECT_EQ(atk->tx_error_types.at(can::ErrorType::Stuff), 1u);

  const auto* peer = report.find("peer");
  ASSERT_NE(peer, nullptr);
  EXPECT_DOUBLE_EQ(peer->destruction_ratio(), 0.0);
}

TEST(Forensics, DetectionBitStatistics) {
  const auto report = analyze(synthetic_log());
  EXPECT_EQ(report.total_attacks_detected, 2u);
  EXPECT_DOUBLE_EQ(report.detection_bit_positions.mean, 4.0);
}

TEST(Forensics, UneradicatedEpisodeFlagged) {
  sim::EventLog log;
  log.push({10, "def", EventKind::CounterattackStart, 0x50, 3, 0, {}});
  const auto report = analyze(log);
  ASSERT_EQ(report.episodes.size(), 1u);
  EXPECT_FALSE(report.episodes[0].eradicated);
}

TEST(Forensics, RealExperimentLogDigests) {
  // End-to-end: digest a real defense run.
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  const core::IvnConfig ivn{{0x100, 0x173, 0x300}};
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);
  auto acfg = attack::Attacker::targeted_dos(0x064);
  acfg.persistent = false;
  attack::Attacker atk{"attacker", acfg};
  atk.attach_to(bus);
  bus.run(6000);

  const auto report = analyze(bus.log());
  ASSERT_EQ(report.episodes.size(), 1u);
  EXPECT_TRUE(report.episodes[0].eradicated);
  EXPECT_EQ(report.episodes[0].counterattacks, 32u);
  const auto* a = report.find("attacker");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->destruction_ratio(), 1.0);
  EXPECT_EQ(a->bus_offs, 1u);
  // The digest renders without blowing up.
  const auto text = report.to_string();
  EXPECT_NE(text.find("bused off"), std::string::npos);
  EXPECT_NE(text.find("attacker"), std::string::npos);
}

}  // namespace
}  // namespace mcan::analysis
