// Unit tests for the conformance layer: the independent ISO 11898-1 oracle,
// the frame-level predictors, the case generator, the differential runner
// and the shrinker.
#include "conformance/oracle.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "can/bitstream.hpp"
#include "conformance/differ.hpp"
#include "conformance/fuzz_case.hpp"
#include "conformance/generator.hpp"
#include "conformance/shrinker.hpp"

namespace mcan::conformance {
namespace {

using can::CanFrame;

// ---------------------------------------------------------------------------
// Oracle codec

TEST(Oracle, EncodeDecodeRoundTrip) {
  const std::vector<CanFrame> frames = {
      CanFrame::make(0x123, {0xDE, 0xAD, 0xBE, 0xEF}),
      CanFrame::make(0x000, {0x00, 0x00}),  // stuff-heavy dominant runs
      CanFrame::make(0x7FF, {0xFF, 0xFF}),  // stuff-heavy recessive runs
      CanFrame::make_remote(0x3A5, 4),
      CanFrame::make_ext(0x1ABCDE5, {1, 2, 3, 4, 5, 6, 7, 8}),
      CanFrame::make_ext(0x0000000, {}),
  };
  for (const auto& f : frames) {
    SCOPED_TRACE(f.to_string());
    const auto wire = oracle_wire_bits(f);
    const auto dec = oracle_decode(wire);
    ASSERT_TRUE(dec.ok) << dec.error;
    EXPECT_EQ(dec.frame, f);
    EXPECT_EQ(dec.frame.extended, f.extended);
    EXPECT_TRUE(dec.ack_seen);
    EXPECT_EQ(dec.wire_bits_consumed, static_cast<int>(wire.size()));
    EXPECT_EQ(dec.stuff_bits, oracle_stuff_bit_count(f));
  }
}

TEST(Oracle, DecodeRejectsCorruptedCrc) {
  const auto f = CanFrame::make(0x155, {0xCA, 0xFE});
  auto wire = oracle_wire_bits(f);
  // Flip one payload bit; either the CRC check or (rarely) a framing rule
  // must reject the window — it can never decode ok to the original frame.
  wire[25] ^= 1;
  const auto dec = oracle_decode(wire);
  if (dec.ok) {
    EXPECT_FALSE(dec.frame == f);
  } else {
    EXPECT_FALSE(dec.error.empty());
  }
}

TEST(Oracle, AgreesWithSimulatorEncoderEverywhere) {
  // Full differential sweep of the standard-ID space at DLC 0, plus a
  // payload sample: the incremental encoder (can/bitstream.cpp) and the
  // non-incremental oracle must agree bit-for-bit, stuff bits included.
  // The transmitter drives the ACK slot recessive, so compare against
  // ack_dominant = false.
  auto check = [](const CanFrame& f) {
    SCOPED_TRACE(f.to_string());
    const auto sim_wire = can::wire_bits(f);
    const auto oracle = oracle_wire_bits(f, /*ack_dominant=*/false);
    ASSERT_EQ(sim_wire.size(), oracle.size());
    int sim_stuff = 0;
    for (std::size_t i = 0; i < sim_wire.size(); ++i) {
      ASSERT_EQ(sim::to_bit(sim_wire[i].level), oracle[i]) << "bit " << i;
      sim_stuff += sim_wire[i].is_stuff ? 1 : 0;
    }
    EXPECT_EQ(sim_stuff, oracle_stuff_bit_count(f));
  };
  for (can::CanId id = 0; id <= 0x7FF; ++id) check(CanFrame::make(id, {}));
  for (can::CanId id = 0; id <= 0x7FF; id += 13) {
    check(CanFrame::make_pattern(id, 8, 0x0123456789ABCDEFull));
    check(CanFrame::make_remote(id, static_cast<std::uint8_t>(id % 9)));
    check(CanFrame::make_ext((id << 18) | (id * 2654435761u & 0x3FFFF),
                             {0x1F, 0xE0, 0x1F, 0xE0}));
  }
}

TEST(Oracle, FinalCrcBitRunStillGetsStuffBitRegression) {
  // Regression for the protocol-model bug this fuzzer found: a run of five
  // equal levels ending at the *final CRC bit* must still be followed by a
  // stuff bit (ISO 11898-1 §10.5 stuffs the whole CRC sequence).  The old
  // encoder skipped it and the old receiver never consumed it — mutually
  // consistent, but non-conformant; the oracle exposed both.
  std::optional<CanFrame> trigger;
  for (can::CanId id = 0; id <= 0x7FF && !trigger; ++id) {
    for (std::uint8_t dlc = 0; dlc <= 2 && !trigger; ++dlc) {
      const auto f = CanFrame::make_pattern(id, dlc, 0x55AA000000000000ull);
      const auto wire = can::wire_bits(f);
      // Trigger = a stuff bit immediately before the CRC delimiter.
      for (std::size_t i = 1; i < wire.size(); ++i) {
        if (wire[i].field == can::Field::CrcDelim && wire[i - 1].is_stuff) {
          trigger = f;
          break;
        }
      }
    }
  }
  ASSERT_TRUE(trigger.has_value())
      << "no frame with a 5-run ending at the final CRC bit found";
  SCOPED_TRACE(trigger->to_string());

  // Encoder side: bit-for-bit agreement with the oracle.
  const auto sim_wire = can::wire_bits(*trigger);
  const auto oracle = oracle_wire_bits(*trigger, /*ack_dominant=*/false);
  ASSERT_EQ(sim_wire.size(), oracle.size());
  for (std::size_t i = 0; i < sim_wire.size(); ++i) {
    ASSERT_EQ(sim::to_bit(sim_wire[i].level), oracle[i]) << "bit " << i;
  }

  // Receiver side: the full differential harness (real controllers, both
  // kernels) delivers the frame with zero errors.
  FuzzCase c;
  c.kind = CaseKind::Clean;
  c.nodes.push_back({{*trigger}});
  c.run_bits = recommended_run_bits(c);
  const auto out = run_case(c);
  EXPECT_FALSE(out.diverged) << out.divergence;
  EXPECT_TRUE(out.stats.oracle_checked);
}

// ---------------------------------------------------------------------------
// Predictors

TEST(Oracle, ArbitrationLowerIdWins) {
  const std::vector<CanFrame> contenders = {CanFrame::make(0x200, {0x01}),
                                            CanFrame::make(0x100, {0x02}),
                                            CanFrame::make(0x300, {0x03})};
  const auto winner = predict_arbitration_winner(contenders);
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(*winner, 1u);
}

TEST(Oracle, ArbitrationStandardBeatsExtendedWithSameBaseId) {
  // IDE is dominant for standard frames, so a standard 0x100 beats an
  // extended frame whose 11 base ID bits are also 0x100.
  const std::vector<CanFrame> contenders = {
      CanFrame::make_ext(0x100ul << 18, {0x01}), CanFrame::make(0x100, {0x02})};
  const auto winner = predict_arbitration_winner(contenders);
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(*winner, 1u);
}

TEST(Oracle, ArbitrationDataBeatsRemoteWithSameId) {
  const std::vector<CanFrame> contenders = {CanFrame::make_remote(0x123),
                                            CanFrame::make(0x123, {})};
  const auto winner = predict_arbitration_winner(contenders);
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(*winner, 1u);
}

TEST(Oracle, ArbitrationSameKeyCollisionIsUnpredictable) {
  const std::vector<CanFrame> contenders = {CanFrame::make(0x123, {0x01}),
                                            CanFrame::make(0x123, {0x02})};
  EXPECT_FALSE(predict_arbitration_winner(contenders).has_value());
}

TEST(Oracle, PredictScheduleDrainsQueuesInPriorityOrder) {
  const std::vector<std::vector<CanFrame>> queues = {
      {CanFrame::make(0x100, {0x01}), CanFrame::make(0x300, {0x03})},
      {CanFrame::make(0x200, {0x02})}};
  const auto pred = predict_schedule(queues);
  ASSERT_TRUE(pred.ok) << pred.error;
  ASSERT_EQ(pred.rounds.size(), 3u);
  EXPECT_EQ(pred.rounds[0].frame.id, 0x100u);
  EXPECT_EQ(pred.rounds[1].frame.id, 0x200u);
  EXPECT_EQ(pred.rounds[2].frame.id, 0x300u);
  // Node 0: wins round 0, loses round 1, wins round 2 -> 3 attempts.
  EXPECT_EQ(pred.attempts[0], 3u);
  EXPECT_EQ(pred.losses[0], 1u);
  // Node 1: loses round 0, wins round 1 -> 2 attempts.
  EXPECT_EQ(pred.attempts[1], 2u);
  EXPECT_EQ(pred.losses[1], 1u);
}

TEST(Oracle, PredictCountersFollowsIso10_11) {
  using Step = CounterStep;
  const auto apply = [](CounterState s, std::initializer_list<Step> steps) {
    return predict_counters(s, std::vector<Step>{steps});
  };
  // TX error then successful retransmit: +8 then -1.
  EXPECT_EQ(apply({}, {Step::TxError, Step::TxSuccess}).tec, 7);
  // Exception A/B bumps nothing.
  EXPECT_EQ(apply({}, {Step::TxErrorNoBump}).tec, 0);
  // RX success from above 127 clamps to 127.
  EXPECT_EQ(apply({0, 200}, {Step::RxSuccess}).rec, 127);
  // REC saturates at the 8-bit register ceiling.
  EXPECT_EQ(apply({0, 255}, {Step::RxDominantAfterFlag}).rec, 255);
  // Error-passive and bus-off thresholds.
  EXPECT_TRUE(apply({120, 0}, {Step::TxError}).error_passive());
  EXPECT_TRUE(apply({250, 0}, {Step::TxError}).bus_off());
  EXPECT_FALSE(apply({120, 0}, {Step::TxError}).bus_off());
}

// ---------------------------------------------------------------------------
// Generator

TEST(Generator, DeterministicAndWellFormed) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const auto a = generate_case(seed);
    const auto b = generate_case(seed);
    EXPECT_EQ(to_json(a), to_json(b)) << "seed " << seed;
    EXPECT_GT(a.run_bits, 0u);
    EXPECT_GE(a.total_frames(), 1u);
    EXPECT_NE(a.fault.seed, 0u) << "fault seed must be pinned for replay";
    for (const auto& node : a.nodes) {
      for (const auto& f : node.frames) {
        EXPECT_TRUE(f.valid()) << f.to_string();
      }
    }
  }
}

TEST(Generator, CoversAllCaseKinds) {
  bool seen[3] = {false, false, false};
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    seen[static_cast<std::size_t>(generate_case(seed).kind)] = true;
  }
  EXPECT_TRUE(seen[0]) << "no Clean case in 100 seeds";
  EXPECT_TRUE(seen[1]) << "no ScheduledFlip case in 100 seeds";
  EXPECT_TRUE(seen[2]) << "no Noisy case in 100 seeds";
}

// ---------------------------------------------------------------------------
// Differ

TEST(Differ, HandcraftedCleanCasePasses) {
  FuzzCase c;
  c.kind = CaseKind::Clean;
  c.nodes.push_back({{CanFrame::make(0x100, {0xAA}),
                      CanFrame::make_ext(0x1000123, {0x55, 0x55})}});
  c.nodes.push_back({{CanFrame::make_remote(0x0F0, 2)}});
  c.run_bits = recommended_run_bits(c);
  const auto out = run_case(c);
  EXPECT_FALSE(out.diverged) << out.divergence;
  EXPECT_TRUE(out.stats.oracle_checked);
  EXPECT_EQ(out.stats.frames_on_wire, 3u);
  EXPECT_GT(out.stats.wire_bits_compared, 0u);
  EXPECT_EQ(out.stats.arbitration_rounds, 3u);
}

TEST(Differ, HandcraftedScheduledFlipCasePasses) {
  FuzzCase c;
  c.kind = CaseKind::ScheduledFlip;
  c.nodes.push_back({{CanFrame::make(0x234, {0x12, 0x34})}});
  c.fault.flips.push_back({0, can::Field::Data, 5});
  c.fault.seed = 1;
  c.run_bits = recommended_run_bits(c);
  const auto out = run_case(c);
  EXPECT_FALSE(out.diverged) << out.divergence;
}

// ---------------------------------------------------------------------------
// Shrinker

TEST(Shrinker, ReducesMarkerDivergenceToOneFrame) {
  // Seeded artificial divergence: the predicate diverges iff a frame with
  // the marker ID is present anywhere.  Starting from 3 nodes x 3 frames,
  // the shrinker must strip everything else.
  constexpr can::CanId kMarker = 0x6AD;
  FuzzCase c;
  c.kind = CaseKind::Clean;
  for (int n = 0; n < 3; ++n) {
    FuzzNode node;
    for (int i = 0; i < 3; ++i) {
      node.frames.push_back(CanFrame::make(
          static_cast<can::CanId>(0x100 + n * 0x10 + i), {0x01, 0x02}));
    }
    c.nodes.push_back(node);
  }
  c.nodes[1].frames[1].id = kMarker;
  c.run_bits = recommended_run_bits(c);

  const CaseRunner marker_runner = [&](const FuzzCase& candidate) {
    CaseOutcome out;
    for (const auto& node : candidate.nodes) {
      for (const auto& f : node.frames) {
        if (f.id == kMarker && !f.extended) {
          out.diverged = true;
          out.divergence = "marker frame present";
        }
      }
    }
    return out;
  };

  const auto res = shrink(c, marker_runner);
  EXPECT_LE(res.minimized.total_frames(), 2u);  // acceptance bar
  ASSERT_EQ(res.minimized.total_frames(), 1u);  // what it actually achieves
  ASSERT_EQ(res.minimized.nodes.size(), 1u);
  EXPECT_EQ(res.minimized.nodes[0].frames[0].id, kMarker);
  EXPECT_GT(res.accepted, 0);
  EXPECT_EQ(res.divergence, "marker frame present");
}

TEST(Shrinker, NonDivergingInputIsReturnedUnchanged) {
  FuzzCase c;
  c.nodes.push_back({{CanFrame::make(0x111, {0x01})}});
  c.run_bits = recommended_run_bits(c);
  const CaseRunner never = [](const FuzzCase&) { return CaseOutcome{}; };
  const auto res = shrink(c, never);
  EXPECT_TRUE(res.divergence.empty());
  EXPECT_EQ(res.minimized.total_frames(), c.total_frames());
}

// ---------------------------------------------------------------------------
// Repro artifacts

TEST(FuzzCase, JsonAndCppArtifactsAreSelfDescribing) {
  FuzzCase c;
  c.seed = 42;
  c.kind = CaseKind::Clean;
  c.nodes.push_back({{CanFrame::make(0x123, {0xAB})}});
  c.run_bits = recommended_run_bits(c);

  const auto json = to_json(c);
  EXPECT_NE(json.find("michican.fuzz_repro.v1"), std::string::npos);
  EXPECT_NE(json.find("\"run_bits\""), std::string::npos);

  const auto test = to_cpp_test(c, "Seed42", "why it diverged");
  EXPECT_NE(test.find("Seed42"), std::string::npos);
  EXPECT_NE(test.find("conformance/differ.hpp"), std::string::npos);
  EXPECT_NE(test.find("EXPECT_FALSE(out.diverged)"), std::string::npos);
  EXPECT_NE(test.find("why it diverged"), std::string::npos);
}

}  // namespace
}  // namespace mcan::conformance
