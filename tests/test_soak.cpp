// Long mixed-scenario soak test: every node type on one bus for several
// simulated seconds, checking global invariants at the end.  This is the
// closest thing to the paper's full testbed (Fig. 5) running everything at
// once.
#include <gtest/gtest.h>

#include "attack/attacker.hpp"
#include "attack/cannon.hpp"
#include "baseline/frequency_ids.hpp"
#include "can/bus.hpp"
#include "can/periodic.hpp"
#include "core/michican_node.hpp"
#include "restbus/candump.hpp"
#include "restbus/replay.hpp"
#include "restbus/vehicles.hpp"

namespace mcan {
namespace {

TEST(Soak, FullTestbedFiveSimulatedSeconds) {
  can::WiredAndBus bus{sim::BusSpeed{125'000}};

  // Veh. D restbus (without the defender's own ID).
  const auto matrix = restbus::vehicle_matrix(restbus::Vehicle::D, 1);
  const core::IvnConfig ivn{matrix.ecu_ids()};
  // Both defender-owned IDs are transmitted by the defender nodes, not by
  // the replay (a second transmitter of a spoofed ID would collide with
  // the spoofer and destroy itself — the victim-collision physics of
  // test_victim_collisions.cpp).
  const auto light_id = ivn.ecus().front();
  restbus::RestbusSim rb{matrix.without(0x173)
                             .without(light_id)
                             .scaled_to_load(125e3, 0.30),
                         bus};

  // Two MichiCAN defenders (distributed deployment): one full, one light.
  core::MichiCanNodeConfig full_cfg;
  full_cfg.own_id = 0x173;
  core::MichiCanNode defender{"defender", ivn, full_cfg};
  defender.attach_to(bus);
  can::attach_periodic(defender.controller(),
                       can::CanFrame::make_pattern(0x173, 8, 0x1234),
                       bus.speed().ms_to_bits(100.0), 25.0,
                       can::PayloadMode::Counter);

  core::MichiCanNodeConfig light_cfg;
  light_cfg.own_id = light_id;
  light_cfg.scenario = core::Scenario::Light;
  core::MichiCanNode light{"light", ivn, light_cfg};
  light.attach_to(bus);

  // A passive IDS and a candump logger watching everything.
  baseline::FrequencyIds ids{"ids", {}};
  ids.attach_to(bus);
  restbus::CandumpRecorder recorder;
  recorder.attach_to(bus);

  // Attackers: a persistent DoS flood and a periodic spoofer.
  attack::Attacker dos{"dos", attack::Attacker::targeted_dos(0x064)};
  dos.attach_to(bus);
  auto spoof_cfg = attack::Attacker::spoof(light_id);
  spoof_cfg.period_bits = 40'000;
  attack::Attacker spoofer{"spoofer", spoof_cfg};
  spoofer.attach_to(bus);

  bus.run_for(sim::Millis{5000.0});

  // --- invariants -----------------------------------------------------------
  // 1. The DoS attacker cycles through bus-off repeatedly.
  EXPECT_GE(bus.log().count(sim::EventKind::BusOff, "dos"), 10u);
  // 2. Both defenders keep clean transmit error counters.
  EXPECT_EQ(defender.controller().tec(), 0);
  EXPECT_FALSE(defender.controller().is_bus_off());
  EXPECT_FALSE(light.controller().is_bus_off());
  // 3. The light defender never counterattacks a DoS (not its job)...
  EXPECT_EQ(light.monitor().stats().counterattacks,
            bus.log().count(sim::EventKind::CounterattackStart, "light"));
  // ...but the spoof on its own ID is punished by it.
  EXPECT_GT(light.monitor().stats().counterattacks, 0u);
  // 4. No restbus ECU is ever confined, and traffic kept flowing.
  EXPECT_FALSE(rb.any_bus_off());
  EXPECT_GT(rb.total_stats().frames_sent, 500u);
  // 5. The defender's own message kept its schedule (plus margin for the
  //    arbitration interference of the flood retransmissions).
  EXPECT_GT(defender.controller().stats().frames_sent, 35u);
  // 6. The passive IDS saw the attacks.
  EXPECT_TRUE(ids.alarmed());
  // 7. The logger recorded plenty of traffic, parse-clean.
  EXPECT_GT(recorder.trace().size(), 500u);
  const auto reparsed = restbus::parse_candump(recorder.dump());
  EXPECT_EQ(reparsed.size(), recorder.trace().size());
  // 8. No spoofed frame of the light defender's ID ever completed.
  for (const auto& e : recorder.trace()) {
    if (e.frame.id == light.own_id()) {
      ADD_FAILURE() << "spoofed frame slipped through at t=" << e.t_seconds;
    }
  }
}

}  // namespace
}  // namespace mcan
