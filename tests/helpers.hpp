// Shared fault-injection helpers for the test suite.
//
// These are deliberately *non-compliant* bus participants: they drive raw
// levels without a protocol controller, exactly what is needed to exercise
// the error paths of compliant nodes from the outside.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "can/node.hpp"
#include "sim/types.hpp"

namespace mcan::test {

/// Drives dominant during absolute bit-time windows; recessive otherwise.
class PulseInjector final : public can::CanNode {
 public:
  void pulse(sim::BitTime start, int len) { windows_.push_back({start, len}); }

  sim::BitLevel tx_level() override {
    for (const auto& [start, len] : windows_) {
      if (now_ >= start && now_ < start + static_cast<sim::BitTime>(len)) {
        return sim::BitLevel::Dominant;
      }
    }
    return sim::BitLevel::Recessive;
  }
  void tick(sim::BitTime now) override { now_ = now; }
  void on_bus_bit(sim::BitLevel) override {}
  [[nodiscard]] std::string_view name() const override { return "pulse"; }

 private:
  sim::BitTime now_{0};
  std::vector<std::pair<sim::BitTime, int>> windows_;
};

/// Replays an arbitrary scripted level sequence starting at a given time
/// (e.g. a hand-corrupted frame), then stays recessive.
class ScriptedNode final : public can::CanNode {
 public:
  ScriptedNode(sim::BitTime start, std::vector<sim::BitLevel> script)
      : start_(start), script_(std::move(script)) {}

  sim::BitLevel tx_level() override {
    if (now_ >= start_ && now_ - start_ < script_.size()) {
      return script_[now_ - start_];
    }
    return sim::BitLevel::Recessive;
  }
  void tick(sim::BitTime now) override { now_ = now; }
  void on_bus_bit(sim::BitLevel) override {}
  [[nodiscard]] std::string_view name() const override { return "scripted"; }

 private:
  sim::BitTime now_{0};
  sim::BitTime start_;
  std::vector<sim::BitLevel> script_;
};

/// Destroys frames: after each SOF (falling edge following >= 11 recessive
/// bits) it forces the bus dominant during raw frame bit positions
/// [from, to).  Six consecutive forced dominant bits guarantee a stuff or
/// bit error for any compliant transmitter.  `max_kills` limits how many
/// frames are destroyed (0 = unlimited).
class FrameKiller final : public can::CanNode {
 public:
  explicit FrameKiller(int from = 13, int to = 20, int max_kills = 0)
      : from_(from), to_(to), max_kills_(max_kills) {}

  sim::BitLevel tx_level() override {
    if (in_frame_ && pos_ >= from_ && pos_ < to_ &&
        (max_kills_ == 0 || kills_ < max_kills_)) {
      return sim::BitLevel::Dominant;
    }
    return sim::BitLevel::Recessive;
  }

  void on_bus_bit(sim::BitLevel bus) override {
    if (!in_frame_) {
      if (sim::is_dominant(bus) && recessive_run_ >= 11) {
        in_frame_ = true;
        pos_ = 0;  // SOF
      }
      recessive_run_ = sim::is_recessive(bus) ? recessive_run_ + 1 : 0;
      return;
    }
    ++pos_;
    if (pos_ == to_ && (max_kills_ == 0 || kills_ < max_kills_)) ++kills_;
    // End of involvement: wait for the bus to go idle again.
    if (sim::is_recessive(bus)) {
      if (++recessive_run_ >= 11) in_frame_ = false;
    } else {
      recessive_run_ = 0;
    }
  }

  void tick(sim::BitTime) override {}
  [[nodiscard]] std::string_view name() const override { return "killer"; }
  [[nodiscard]] int kills() const noexcept { return kills_; }

 private:
  int from_;
  int to_;
  int max_kills_;
  bool in_frame_{false};
  int pos_{0};
  int recessive_run_{11};
  int kills_{0};
};

}  // namespace mcan::test
