// Unit tests for detection ranges and attack classification
// (paper Definitions IV.1 - IV.4).
#include "core/detection.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace mcan::core {
namespace {

TEST(IdRangeSet, AddAndContains) {
  IdRangeSet s;
  s.add(0x10, 0x20);
  s.add(0x30);
  EXPECT_TRUE(s.contains(0x10));
  EXPECT_TRUE(s.contains(0x18));
  EXPECT_TRUE(s.contains(0x20));
  EXPECT_FALSE(s.contains(0x21));
  EXPECT_TRUE(s.contains(0x30));
  EXPECT_FALSE(s.contains(0x0F));
  EXPECT_EQ(s.id_count(), 18u);
}

TEST(IdRangeSet, MergesAdjacentAndOverlapping) {
  IdRangeSet s;
  s.add(0x10, 0x20);
  s.add(0x21, 0x30);  // adjacent
  s.add(0x25, 0x40);  // overlapping
  EXPECT_EQ(s.ranges().size(), 1u);
  EXPECT_EQ(s.ranges()[0], (IdRange{0x10, 0x40}));
}

TEST(IvnConfig, PaperExampleTwoEcus) {
  // Paper Sec. IV-A: E = {0x005, 0x00F}.  The ECU transmitting 0x00F marks
  // 0x000-0x004 and 0x006-0x00F malicious but cannot judge 0x005.
  const IvnConfig ivn{{0x005, 0x00F}};
  const auto d = ivn.detection_ranges(0x00F);
  EXPECT_TRUE(d.contains(0x000));
  EXPECT_TRUE(d.contains(0x004));
  EXPECT_FALSE(d.contains(0x005));  // the other ECU's legitimate ID
  EXPECT_TRUE(d.contains(0x006));
  EXPECT_TRUE(d.contains(0x00F));  // own ID: spoofing detection
  EXPECT_FALSE(d.contains(0x010));
  EXPECT_EQ(d.id_count(), 15u);
}

TEST(IvnConfig, ClassifyMatchesDefinitions) {
  const IvnConfig ivn{{0x100, 0x200, 0x300}};
  // Def. IV.1: own ID.
  EXPECT_EQ(ivn.classify(0x200, 0x200), AttackClass::Spoofing);
  // Def. IV.2: lower non-legitimate ID.
  EXPECT_EQ(ivn.classify(0x200, 0x150), AttackClass::Dos);
  EXPECT_EQ(ivn.classify(0x200, 0x000), AttackClass::Dos);
  // Lower legitimate ID: only its owner can judge.
  EXPECT_EQ(ivn.classify(0x200, 0x100), AttackClass::Undecidable);
  // Def. IV.3: above the highest legitimate ID.
  EXPECT_EQ(ivn.classify(0x200, 0x301), AttackClass::Miscellaneous);
  // Higher legitimate ID.
  EXPECT_EQ(ivn.classify(0x200, 0x300), AttackClass::Legitimate);
  // Unknown ID between own and highest: covered by higher-ID ECUs.
  EXPECT_EQ(ivn.classify(0x200, 0x250), AttackClass::Legitimate);
}

TEST(IvnConfig, DetectionRangeNeverContainsLowerLegitimateIds) {
  sim::Rng rng{77};
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<can::CanId> ids;
    const auto n = rng.uniform(2, 60);
    for (std::uint64_t i = 0; i < n; ++i) {
      ids.push_back(static_cast<can::CanId>(rng.uniform(0, can::kMaxStdId)));
    }
    const IvnConfig ivn{ids};
    for (const auto own : ivn.ecus()) {
      const auto d = ivn.detection_ranges(own);
      for (const auto other : ivn.ecus()) {
        if (other < own) {
          EXPECT_FALSE(d.contains(other));
        }
      }
      EXPECT_TRUE(d.contains(own));
      // Exhaustive consistency with the definitions.
      for (std::uint32_t id = 0; id <= can::kMaxStdId; ++id) {
        const auto c = ivn.classify(own, static_cast<can::CanId>(id));
        const bool should =
            c == AttackClass::Spoofing || c == AttackClass::Dos;
        EXPECT_EQ(d.contains(static_cast<can::CanId>(id)), should)
            << "own=" << own << " id=" << id;
      }
    }
  }
}

TEST(IvnConfig, LightScenarioGuardsOwnIdOnly) {
  const IvnConfig ivn{{0x100, 0x200, 0x300}};
  const auto d = ivn.detection_ranges(0x300, Scenario::Light);
  EXPECT_EQ(d.id_count(), 1u);
  EXPECT_TRUE(d.contains(0x300));
  EXPECT_FALSE(d.contains(0x000));
}

TEST(IvnConfig, LightSubsetIsLowerHalf) {
  const IvnConfig ivn{{0x10, 0x20, 0x30, 0x40}};
  EXPECT_TRUE(ivn.in_light_subset(0x10));
  EXPECT_TRUE(ivn.in_light_subset(0x20));
  EXPECT_FALSE(ivn.in_light_subset(0x30));
  EXPECT_FALSE(ivn.in_light_subset(0x40));
}

TEST(IvnConfig, LowestEcuDetectsEverythingBelow) {
  const IvnConfig ivn{{0x100, 0x200}};
  const auto d = ivn.detection_ranges(0x100);
  EXPECT_EQ(d.ranges().size(), 1u);
  EXPECT_EQ(d.ranges()[0], (IdRange{0x000, 0x100}));
}

TEST(IvnConfig, DedupesAndSortsInput) {
  const IvnConfig ivn{{0x300, 0x100, 0x300, 0x200}};
  ASSERT_EQ(ivn.ecus().size(), 3u);
  EXPECT_EQ(ivn.ecus()[0], 0x100);
  EXPECT_EQ(ivn.highest(), 0x300);
}

}  // namespace
}  // namespace mcan::core
