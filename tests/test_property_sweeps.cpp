// Parameterized property sweeps (TEST_P) over the defense pipeline:
// every attack configuration in the sweep must end in attacker bus-off
// within the theoretical bit budget, at any bus speed, for any DLC.
#include <gtest/gtest.h>

#include "analysis/busoff_meter.hpp"
#include "analysis/theory.hpp"
#include "attack/attacker.hpp"
#include "can/bus.hpp"
#include "core/michican_node.hpp"
#include "restbus/vehicles.hpp"

namespace mcan {
namespace {

using attack::Attacker;

core::IvnConfig test_ivn() {
  return core::IvnConfig{
      restbus::vehicle_matrix(restbus::Vehicle::D, 1).ecu_ids()};
}

struct DefenseRun {
  bool bus_off{};
  double busoff_bits{};
  int defender_tec{};
  std::uint64_t counterattacks{};
};

DefenseRun run_defense(attack::AttackerConfig acfg,
                       sim::BusSpeed speed = sim::BusSpeed{50'000}) {
  can::WiredAndBus bus{speed};
  const auto ivn = test_ivn();
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);
  acfg.persistent = false;
  Attacker atk{"attacker", acfg};
  atk.attach_to(bus);
  bus.run(6000);

  DefenseRun out;
  out.bus_off = atk.node().is_bus_off();
  const auto bits = analysis::busoff_durations_bits(bus.log(), "attacker");
  if (!bits.empty()) out.busoff_bits = bits.front();
  out.defender_tec = def.controller().tec();
  out.counterattacks = def.monitor().stats().counterattacks;
  return out;
}

// --- sweep 1: attacker ID ---------------------------------------------------

class DosIdSweep : public ::testing::TestWithParam<int> {};

TEST_P(DosIdSweep, AttackerAlwaysBusedOffWithinBudget) {
  const auto id = static_cast<can::CanId>(GetParam());
  const auto ivn = test_ivn();
  // Only sweep IDs the defender can actually judge malicious.
  ASSERT_TRUE(ivn.detection_ranges(0x173).contains(id));

  const auto r = run_defense(Attacker::targeted_dos(id));
  EXPECT_TRUE(r.bus_off) << "id=" << id;
  EXPECT_EQ(r.defender_tec, 0);
  EXPECT_GE(r.counterattacks, 32u);
  // Theoretical corridor: best case 1088 bits, worst case 1248, plus
  // receiver error-flag extension of a few bits per retransmission.
  EXPECT_GE(r.busoff_bits, 1088.0 - 32.0) << "id=" << id;
  EXPECT_LE(r.busoff_bits, 1248.0 + 32.0 * 8.0) << "id=" << id;
}

INSTANTIATE_TEST_SUITE_P(
    AcrossIdPatterns, DosIdSweep,
    ::testing::Values(0x000,  // all dominant: maximum stuffing
                      0x001, 0x002, 0x050, 0x051, 0x064, 0x066, 0x067,
                      0x0AA,  // alternating bits
                      0x055, 0x0FF, 0x100, 0x111, 0x145, 0x16A,
                      0x172, 0x173),  // spoofing of the defender itself
    [](const ::testing::TestParamInfo<int>& p) {
      return "Id0x" + [](int v) {
        std::string s;
        const char* digits = "0123456789ABCDEF";
        for (int shift = 8; shift >= 0; shift -= 4) {
          s.push_back(digits[(v >> shift) & 0xF]);
        }
        return s;
      }(p.param);
    });

// --- sweep 2: payload length -------------------------------------------------

class DlcSweep : public ::testing::TestWithParam<int> {};

TEST_P(DlcSweep, AnyDlcIsDefeated) {
  auto acfg = Attacker::targeted_dos(0x064);
  acfg.dlc = static_cast<std::uint8_t>(GetParam());
  const auto r = run_defense(acfg);
  EXPECT_TRUE(r.bus_off) << "dlc=" << GetParam();
  EXPECT_EQ(r.defender_tec, 0);
}

INSTANTIATE_TEST_SUITE_P(AllDlcValues, DlcSweep, ::testing::Range(0, 9));

// --- sweep 3: bus speed -------------------------------------------------------

class SpeedSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SpeedSweep, BusOffBitCountIsSpeedInvariant) {
  const sim::BusSpeed speed{GetParam()};
  const auto r = run_defense(Attacker::targeted_dos(0x064), speed);
  EXPECT_TRUE(r.bus_off) << "speed=" << GetParam();
  // The protocol dynamics are defined in bits: the cycle length must not
  // depend on the bus speed (paper Sec. V-C works in bits for this reason).
  EXPECT_NEAR(r.busoff_bits, 1230.0, 60.0) << "speed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PaperSpeeds, SpeedSweep,
                         ::testing::Values(50'000u, 125'000u, 250'000u,
                                           500'000u, 1'000'000u));

// --- sweep 4: remote frames ---------------------------------------------------

TEST(RtrAttack, RemoteFrameSpoofIsNeutralized) {
  // An RTR spoof of the defender's ID: the counterattack window still
  // destroys it (the attacker loses arbitration on the forced RTR bit or
  // errs in the control field) and the attack never completes.
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  const auto ivn = test_ivn();
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);

  can::BitController atk{"attacker"};
  atk.attach_to(bus);
  int accepted = 0;
  def.controller().set_rx_callback(
      [&](const can::CanFrame& f, sim::BitTime) {
        if (f.id == 0x173) ++accepted;
      });
  for (int i = 0; i < 20; ++i) {
    atk.enqueue(can::CanFrame::make_remote(0x173, 8));
  }
  bus.run(20'000);
  EXPECT_EQ(accepted, 0);  // no spoofed remote frame ever completes
  EXPECT_EQ(def.controller().tec(), 0);
}

// --- sweep 5: scenario x attack class ----------------------------------------

struct ScenarioCase {
  core::Scenario scenario;
  int attacker_id;
  bool expect_busoff;
};

class ScenarioSweep : public ::testing::TestWithParam<ScenarioCase> {};

TEST_P(ScenarioSweep, MatchesDeploymentSemantics) {
  const auto& c = GetParam();
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  const auto ivn = test_ivn();
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  cfg.scenario = c.scenario;
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);
  auto acfg = Attacker::targeted_dos(static_cast<can::CanId>(c.attacker_id));
  acfg.persistent = false;
  Attacker atk{"attacker", acfg};
  atk.attach_to(bus);
  bus.run(6000);
  EXPECT_EQ(atk.node().is_bus_off(), c.expect_busoff);
}

INSTANTIATE_TEST_SUITE_P(
    FullVsLight, ScenarioSweep,
    ::testing::Values(
        ScenarioCase{core::Scenario::Full, 0x064, true},   // DoS caught
        ScenarioCase{core::Scenario::Full, 0x173, true},   // spoof caught
        ScenarioCase{core::Scenario::Light, 0x064, false}, // light skips DoS
        ScenarioCase{core::Scenario::Light, 0x173, true}), // own ID guarded
    [](const ::testing::TestParamInfo<ScenarioCase>& p) {
      return std::string(p.param.scenario == core::Scenario::Full ? "Full"
                                                                  : "Light") +
             "_0x" + std::to_string(p.param.attacker_id);
    });

}  // namespace
}  // namespace mcan
