// Auto-generated conformance repro — produced by the fuzz
// shrinker; edit only to document the fix.
//
// The last five CRC bits form an equal run; ISO 11898-1 Sec. 10.5 still
// requires a stuff bit after the final CRC bit, which the encoder
// skipped and the receiver never consumed.  The oracle flagged the
// frame as a stuff/form error on the CRC delimiter.  Fixed in
// src/can/bitstream.cpp + src/can/controller.cpp.
#include <gtest/gtest.h>

#include "conformance/differ.hpp"

namespace mcan::conformance {
namespace {

TEST(FuzzRepro, FinalCrcStuffBit) {
  FuzzCase c;
  c.seed = 0ull;
  c.kind = CaseKind::Clean;
  c.run_bits = 420;
  {
    FuzzNode n;
    {
      can::CanFrame f;
      f.id = 0x6;
      f.dlc = 2;
      f.data = {0x55, 0xAA};
      n.frames.push_back(f);
    }
    c.nodes.push_back(std::move(n));
  }

  const auto out = run_case(c);
  EXPECT_FALSE(out.diverged) << out.divergence;
}

}  // namespace
}  // namespace mcan::conformance
