// Tests for the CAN response-time analysis (Davis et al., the paper's
// reference [49]) and its use in the deadline arguments of Secs. V-C/V-E.
#include "restbus/schedulability.hpp"

#include <gtest/gtest.h>

#include "analysis/theory.hpp"
#include "restbus/vehicles.hpp"

namespace mcan::restbus {
namespace {

CommMatrix two_message_set() {
  // Hand-checkable example at 500 kbit/s:
  //   A: id 0x100, dlc 8 (C = 125 bits = 0.25 ms), T = 10 ms
  //   B: id 0x200, dlc 8 (C = 0.25 ms),            T = 10 ms
  return CommMatrix{"hand",
                    {{0x100, 10.0, 8, "A", "e1"}, {0x200, 10.0, 8, "B", "e2"}}};
}

TEST(Schedulability, HandComputedTwoMessageCase) {
  const auto rep = response_time_analysis(two_message_set(),
                                          {.bits_per_second = 500e3});
  ASSERT_EQ(rep.results.size(), 2u);
  const double c = avg_frame_bits(8) / 500e3 * 1e3;  // per-frame ms

  // Highest priority: blocked by one lower-priority frame, then sends.
  const auto& a = rep.results[0];
  EXPECT_NEAR(a.blocking_ms, c, 1e-9);
  EXPECT_NEAR(a.response_ms, 2 * c, 1e-6);
  EXPECT_TRUE(a.schedulable);

  // Lowest priority: no blocking, one interference from A.
  const auto& b = rep.results[1];
  EXPECT_NEAR(b.blocking_ms, 0.0, 1e-9);
  EXPECT_NEAR(b.response_ms, 2 * c, 1e-6);
  EXPECT_TRUE(b.schedulable);
  EXPECT_TRUE(rep.all_schedulable);
  EXPECT_NEAR(rep.total_utilization, 2 * c / 10.0, 1e-9);
}

TEST(Schedulability, ResponseTimesAreMonotoneInPriority) {
  const auto matrix = vehicle_matrix(Vehicle::D, 1);
  const auto rep = response_time_analysis(matrix,
                                          {.bits_per_second = 500e3});
  ASSERT_EQ(rep.results.size(), matrix.size());
  // Not strictly monotone in general, but the top-priority message must
  // have the smallest response time and the bottom one the largest
  // queueing among equal-length messages; check the weak global property:
  EXPECT_LE(rep.results.front().response_ms, rep.results.back().response_ms);
}

TEST(Schedulability, VehicleMatricesAreSchedulableAttackFree) {
  for (const auto& m : all_vehicle_matrices()) {
    const auto rep = response_time_analysis(m, {.bits_per_second = 500e3});
    EXPECT_TRUE(rep.all_schedulable) << m.bus_name();
    EXPECT_LT(rep.total_utilization, 0.8) << m.bus_name();  // 80 % bound
  }
}

TEST(Schedulability, CounterattackBlockingBreaksTightDeadlinesOnSlowBus) {
  // Sec. V-E, quantified: a full bus-off sequence (1248 bits) blocks the
  // bus for 25 ms at 50 kbit/s — fatal for a 10 ms-deadline class, fine
  // for 500/1000 ms classes.
  CommMatrix m{"t",
               {{0x100, 10.0, 8, "fast", "e1"},
                {0x300, 500.0, 8, "slow", "e2"}}};
  const RtaConfig attacked{.bits_per_second = 50e3,
                           .attack_blocking_bits =
                               analysis::theory::isolated_total_bits()};
  const auto rep = response_time_analysis(m, attacked);
  ASSERT_EQ(rep.results.size(), 2u);
  EXPECT_FALSE(rep.results[0].schedulable);  // 10 ms class misses
  EXPECT_TRUE(rep.results[1].schedulable);   // 500 ms class absorbs it
}

TEST(Schedulability, CounterattackHarmlessAtProductionSpeed) {
  // At the production 500 kbit/s, the same 1248-bit spike is only 2.5 ms:
  // every deadline class of the vehicle matrices absorbs it.
  for (const auto& m : all_vehicle_matrices()) {
    const RtaConfig attacked{.bits_per_second = 500e3,
                             .attack_blocking_bits =
                                 analysis::theory::isolated_total_bits()};
    const auto rep = response_time_analysis(m, attacked);
    EXPECT_TRUE(rep.all_schedulable) << m.bus_name();
  }
}

TEST(Schedulability, OverloadedSetDetectedAsUnschedulable) {
  // Three 1 ms-period messages cannot fit at 50 kbit/s (C = 2.5 ms each).
  CommMatrix m{"over",
               {{0x100, 1.0, 8, "a", "e"},
                {0x101, 1.0, 8, "b", "e"},
                {0x102, 1.0, 8, "c", "e"}}};
  const auto rep = response_time_analysis(m, {.bits_per_second = 50e3});
  EXPECT_FALSE(rep.all_schedulable);
  EXPECT_GT(rep.total_utilization, 1.0);
}

TEST(Schedulability, ExplicitDeadlineOverridesPeriod) {
  CommMatrix m{"d", {{0x100, 100.0, 8, "a", "e", /*deadline=*/0.1}}};
  const auto rep = response_time_analysis(m, {.bits_per_second = 500e3});
  ASSERT_EQ(rep.results.size(), 1u);
  EXPECT_DOUBLE_EQ(rep.results[0].deadline_ms, 0.1);
  EXPECT_FALSE(rep.results[0].schedulable);  // C alone is 0.25 ms
}

}  // namespace
}  // namespace mcan::restbus
