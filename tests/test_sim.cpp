// Tests for the simulation kernel: deterministic RNG, bus-trace queries,
// event log filtering and the time conversions everything relies on.
#include <gtest/gtest.h>

#include <set>

#include "sim/event_log.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace mcan::sim {
namespace {

TEST(Types, WiredAndDominantWins) {
  EXPECT_EQ(wired_and(BitLevel::Recessive, BitLevel::Recessive),
            BitLevel::Recessive);
  EXPECT_EQ(wired_and(BitLevel::Dominant, BitLevel::Recessive),
            BitLevel::Dominant);
  EXPECT_EQ(wired_and(BitLevel::Recessive, BitLevel::Dominant),
            BitLevel::Dominant);
  EXPECT_EQ(wired_and(BitLevel::Dominant, BitLevel::Dominant),
            BitLevel::Dominant);
}

TEST(Types, BitConversionsRoundTrip) {
  EXPECT_EQ(to_bit(BitLevel::Dominant), 0);
  EXPECT_EQ(to_bit(BitLevel::Recessive), 1);
  EXPECT_EQ(from_bit(0), BitLevel::Dominant);
  EXPECT_EQ(invert(BitLevel::Dominant), BitLevel::Recessive);
}

TEST(Types, BusSpeedConversions) {
  const BusSpeed s{50'000};
  EXPECT_DOUBLE_EQ(s.bit_time_us(), 20.0);
  EXPECT_DOUBLE_EQ(s.bits_to_ms(1250), 25.0);
  EXPECT_DOUBLE_EQ(s.ms_to_bits(25.0), 1250.0);
  // Round trip.
  EXPECT_DOUBLE_EQ(s.ms_to_bits(s.bits_to_ms(777)), 777.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInRange) {
  Rng r{99};
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng r{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng r{5};
  for (int i = 0; i < 2000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r{11};
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10'000.0, 0.3, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{42};
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

TEST(LogicAnalyzer, DominantCountAndBusyFraction) {
  LogicAnalyzer t;
  // 5 dominant, 20 recessive (idle run), 5 dominant.
  for (int i = 0; i < 5; ++i) t.sample(BitLevel::Dominant);
  for (int i = 0; i < 20; ++i) t.sample(BitLevel::Recessive);
  for (int i = 0; i < 5; ++i) t.sample(BitLevel::Dominant);
  EXPECT_EQ(t.dominant_count(0, 30), 10u);
  // Busy = 10 dominant bits; the 20-recessive run counts as idle.
  EXPECT_DOUBLE_EQ(t.busy_fraction(0, 30), 10.0 / 30.0);
}

TEST(LogicAnalyzer, ShortRecessiveRunsCountAsBusy) {
  LogicAnalyzer t;
  // dominant, 5 recessive (intra-frame), dominant => all busy.
  t.sample(BitLevel::Dominant);
  for (int i = 0; i < 5; ++i) t.sample(BitLevel::Recessive);
  t.sample(BitLevel::Dominant);
  EXPECT_DOUBLE_EQ(t.busy_fraction(0, 7), 1.0);
}

TEST(LogicAnalyzer, FallingEdgeDetection) {
  LogicAnalyzer t;
  t.sample(BitLevel::Recessive);
  t.sample(BitLevel::Recessive);
  t.sample(BitLevel::Dominant);
  t.sample(BitLevel::Dominant);
  t.sample(BitLevel::Recessive);
  t.sample(BitLevel::Dominant);
  const auto e1 = t.next_falling_edge(0);
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(*e1, 2u);
  const auto e2 = t.next_falling_edge(*e1 + 1);
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(*e2, 5u);
  EXPECT_FALSE(t.next_falling_edge(6).has_value());
}

TEST(LogicAnalyzer, EndOfRecessiveRun) {
  LogicAnalyzer t;
  t.sample(BitLevel::Dominant);
  for (int i = 0; i < 11; ++i) t.sample(BitLevel::Recessive);
  t.sample(BitLevel::Dominant);
  const auto end = t.end_of_recessive_run(0, 11);
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(*end, 12u);
  EXPECT_FALSE(t.end_of_recessive_run(2, 11).has_value());
}

TEST(LogicAnalyzer, RenderGroupsBits) {
  LogicAnalyzer t;
  for (int i = 0; i < 12; ++i) {
    t.sample(i % 2 ? BitLevel::Recessive : BitLevel::Dominant);
  }
  EXPECT_EQ(t.render(0, 12, 4), "_-_- _-_- _-_-");
}

TEST(EventLog, FilterByKindAndNode) {
  EventLog log;
  log.push({1, "a", EventKind::BusOff, 0, 0, 0, {}});
  log.push({2, "b", EventKind::BusOff, 0, 0, 0, {}});
  log.push({3, "a", EventKind::FrameTxStart, 0, 0, 0, {}});
  EXPECT_EQ(log.filter(EventKind::BusOff).size(), 2u);
  EXPECT_EQ(log.filter(EventKind::BusOff, "a").size(), 1u);
  EXPECT_EQ(log.count(EventKind::FrameTxStart), 1u);
}

TEST(EventLog, FirstRespectsFromAndNode) {
  EventLog log;
  log.push({1, "a", EventKind::BusOff, 0, 0, 0, {}});
  log.push({9, "a", EventKind::BusOff, 0, 0, 0, {}});
  const auto* e = log.first(EventKind::BusOff, 5, "a");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->at, 9u);
  EXPECT_EQ(log.first(EventKind::BusOff, 10), nullptr);
}

TEST(EventLog, DumpTruncates) {
  EventLog log;
  for (int i = 0; i < 30; ++i) {
    log.push({static_cast<BitTime>(i), "n", EventKind::Custom, 0, 0, 0, {}});
  }
  const auto s = log.dump(10);
  EXPECT_NE(s.find("20 more"), std::string::npos);
}

TEST(EventKindNames, AllDistinct) {
  std::set<std::string_view> names;
  for (int k = 0; k <= static_cast<int>(EventKind::Custom); ++k) {
    names.insert(to_string(static_cast<EventKind>(k)));
  }
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(EventKind::Custom) + 1);
}

// A switch with no default over every member: adding an EventKind without
// updating this function (and, by the same rule, to_string and the timeline
// exporter) is a -Wswitch -Werror build failure, not a silent gap.
constexpr bool covers_every_kind(EventKind k) {
  switch (k) {
    case EventKind::FrameTxStart:
    case EventKind::FrameTxSuccess:
    case EventKind::FrameRxSuccess:
    case EventKind::ArbitrationLost:
    case EventKind::TxError:
    case EventKind::RxError:
    case EventKind::ErrorStateChange:
    case EventKind::BusOff:
    case EventKind::BusOffRecovered:
    case EventKind::SuspendStart:
    case EventKind::AttackDetected:
    case EventKind::CounterattackStart:
    case EventKind::CounterattackEnd:
    case EventKind::OverloadFrame:
    case EventKind::FaultInjected:
    case EventKind::Custom:
      return true;
  }
  return false;
}

TEST(EventKindNames, ToStringIsExhaustive) {
  EXPECT_EQ(kEventKindCount, static_cast<std::size_t>(EventKind::Custom) + 1);
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const auto kind = static_cast<EventKind>(k);
    EXPECT_TRUE(covers_every_kind(kind));
    const auto name = to_string(kind);
    EXPECT_FALSE(name.empty()) << "EventKind " << k << " has no name";
    EXPECT_NE(name, "Unknown") << "EventKind " << k << " misses its case";
  }
}

}  // namespace
}  // namespace mcan::sim
