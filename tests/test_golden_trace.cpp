// Golden-trace regression: the Fig. 6 counterattack bit pattern (two
// intertwined attackers, Exp. 5) rendered by the LogicAnalyzer for a fixed
// seed is diffed against a checked-in expected file.  Controller/monitor
// refactors that silently shift detection bits, counterattack windows, or
// overwrite positions change this waveform and must update the golden file
// deliberately:
//
//   MICHICAN_UPDATE_GOLDEN=1 ./test_golden_trace
//
// rewrites tests/golden/fig6_trace.txt from the current simulation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/experiments.hpp"

#ifndef MICHICAN_GOLDEN_DIR
#error "MICHICAN_GOLDEN_DIR must point at tests/golden"
#endif

namespace mcan {
namespace {

constexpr std::uint64_t kGoldenSeed = 42;

std::string golden_path() {
  return std::string{MICHICAN_GOLDEN_DIR} + "/fig6_trace.txt";
}

std::string render_fig6() {
  auto spec = analysis::table2_experiment(5);
  spec.duration = sim::Millis{120.0};  // one joint bus-off cycle
  spec.seed = kGoldenSeed;
  const auto res = analysis::run_experiment(spec);
  return res.fig6_trace;
}

TEST(GoldenTrace, Fig6PatternMatchesCheckedInWaveform) {
  const std::string trace = render_fig6();
  ASSERT_FALSE(trace.empty())
      << "first joint cycle did not complete — both attackers must reach "
         "bus-off within 120 ms";

  if (std::getenv("MICHICAN_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{golden_path(), std::ios::binary};
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << trace << "\n";
    GTEST_SKIP() << "golden file regenerated: " << golden_path();
  }

  std::ifstream in{golden_path(), std::ios::binary};
  ASSERT_TRUE(in) << "missing golden file " << golden_path()
                  << " — regenerate with MICHICAN_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();

  std::string want = expected.str();
  if (!want.empty() && want.back() == '\n') want.pop_back();
  EXPECT_EQ(trace, want)
      << "the Fig. 6 counterattack bit pattern changed; if the protocol "
         "change is intentional, rerun with MICHICAN_UPDATE_GOLDEN=1 and "
         "review the waveform diff";
}

TEST(GoldenTrace, WaveformIsStableAcrossRuns) {
  // The golden diff is only meaningful if rendering is deterministic.
  EXPECT_EQ(render_fig6(), render_fig6());
}

}  // namespace
}  // namespace mcan
