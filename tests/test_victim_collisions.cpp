// Findings beyond the paper's tables, kept as regression tests:
//
// 1. Same-ID collision spiral: a spoofed victim that KEEPS TRANSMITTING its
//    own ID during a continuous same-ID flood suffers mutual frame
//    destruction (classic CAN error-handling physics, cf. Cho & Shin).
//    MichiCAN cannot counterattack these merged frames (the defender *is*
//    the transmitter), so both error counters climb.  This is why the
//    paper's Table II defender is silent during the recordings — and the
//    effect deserves documentation (see EXPERIMENTS.md).
//
// 2. Masquerade attack (Sec. III): suspension of the victim followed by
//    fabrication of its data — and its prevention by MichiCAN.
#include <gtest/gtest.h>

#include "attack/attacker.hpp"
#include "can/bus.hpp"
#include "can/periodic.hpp"
#include "core/michican_node.hpp"

namespace mcan {
namespace {

using attack::Attacker;

TEST(VictimCollisions, TransmittingSpoofVictimSuffersCollisions) {
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  const core::IvnConfig ivn{{0x100, 0x173, 0x300}};
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);
  can::BitController peer{"peer"};  // ACK provider
  peer.attach_to(bus);

  // The defender actively broadcasts its 0x173 while a continuous flood
  // spoofs the very same ID.
  can::attach_periodic(def.controller(),
                       can::CanFrame::make_pattern(0x173, 8, 0x1122334455ull),
                       2000.0, 0.0, can::PayloadMode::Random);
  Attacker atk{"attacker", Attacker::spoof(0x173)};
  atk.attach_to(bus);

  bus.run(100'000);

  // The attack is still being fought (repeated bus-offs)...
  EXPECT_GE(bus.log().count(sim::EventKind::BusOff, "attacker"), 5u);
  // ...but the victim's own transmissions collide with same-ID floods and
  // cost it transmit errors — the spiral the silent-victim setup avoids.
  EXPECT_GT(def.controller().stats().tx_errors, 0u);
}

TEST(VictimCollisions, SilentVictimStaysPristine) {
  // Control experiment: identical attack, defender transmits nothing.
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  const core::IvnConfig ivn{{0x100, 0x173, 0x300}};
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);
  can::BitController peer{"peer"};
  peer.attach_to(bus);
  Attacker atk{"attacker", Attacker::spoof(0x173)};
  atk.attach_to(bus);

  bus.run(100'000);
  EXPECT_GE(bus.log().count(sim::EventKind::BusOff, "attacker"), 5u);
  EXPECT_EQ(def.controller().tec(), 0);
  EXPECT_EQ(def.controller().stats().tx_errors, 0u);
}

TEST(Masquerade, SuspensionPlusFabricationWithoutDefense) {
  // Without MichiCAN: the attacker first starves the victim with a
  // higher-priority flood (suspension), then fabricates the victim's
  // messages — receivers consume attacker data believing it is the victim.
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  can::BitController victim{"victim"};
  can::BitController consumer{"consumer"};
  victim.attach_to(bus);
  consumer.attach_to(bus);
  can::attach_periodic(victim,
                       can::CanFrame::make(0x173, {0x01, 0x01, 0x01}),
                       2500.0);
  std::uint64_t fabricated = 0, genuine = 0;
  consumer.set_rx_callback([&](const can::CanFrame& f, sim::BitTime) {
    if (f.id != 0x173) return;
    if (f.data[0] == 0xEE) {
      ++fabricated;
    } else {
      ++genuine;
    }
  });

  // Phase 1: suspension — flood with a higher-priority ID so the victim
  // never wins arbitration; fabricate 0x173 with marker data in between.
  auto scfg = Attacker::targeted_dos(0x064);
  Attacker suspender{"suspender", scfg};
  suspender.attach_to(bus);
  auto fcfg = Attacker::spoof(0x173);
  fcfg.period_bits = 2500;
  fcfg.random_payload = false;
  Attacker fabricator{"fabricator", fcfg};
  // Mark the fabricated payload.
  // (Fixed payload defaults to zeros; craft via the queue directly.)
  fabricator.attach_to(bus);
  fabricator.node().add_app([](sim::BitTime, can::BitController& c) {
    if (c.queue_depth() == 0) {
      c.enqueue(can::CanFrame::make(0x173, {0xEE, 0xEE}));
    }
  });

  bus.run(50'000);
  // The flood occupies the bus; the genuine victim is starved while
  // fabricated frames (sent by the flooding node pair) dominate whenever
  // they win arbitration between flood frames.
  EXPECT_EQ(genuine, 0u);
  EXPECT_EQ(victim.stats().frames_sent, 0u);
}

TEST(Masquerade, MichiCanPreventsBothStages) {
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  const core::IvnConfig ivn{{0x100, 0x173, 0x300}};
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);

  can::BitController victim{"victim"};
  can::BitController consumer{"consumer"};
  victim.attach_to(bus);
  consumer.attach_to(bus);
  can::attach_periodic(victim, can::CanFrame::make(0x300, {0x01}), 2500.0);
  std::uint64_t fabricated = 0;
  consumer.set_rx_callback([&](const can::CanFrame& f, sim::BitTime) {
    if (f.id == 0x173 && f.data[0] == 0xEE) ++fabricated;
  });

  auto scfg = Attacker::targeted_dos(0x064);
  scfg.persistent = false;
  Attacker suspender{"suspender", scfg};
  suspender.attach_to(bus);
  auto fcfg = Attacker::spoof(0x173);
  fcfg.persistent = false;
  fcfg.random_payload = false;
  Attacker fabricator{"fabricator", fcfg};
  fabricator.attach_to(bus);

  bus.run(50'000);
  // Both attacker ECUs confined; no fabricated frame ever accepted; the
  // legitimate third-party traffic kept flowing.
  EXPECT_TRUE(suspender.node().is_bus_off());
  EXPECT_TRUE(fabricator.node().is_bus_off());
  EXPECT_EQ(fabricated, 0u);
  EXPECT_GT(victim.stats().frames_sent, 10u);
}

}  // namespace
}  // namespace mcan
