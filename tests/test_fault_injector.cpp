// The physical-layer fault injector: schedule determinism, §10.11 fault
// confinement under stuck-at windows, the sample-skew tolerance boundary,
// and the BER=0 no-op guarantee the fault-sweep campaign rests on.
#include "can/fault_injector.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "can/bus.hpp"
#include "can/controller.hpp"
#include "can/frame.hpp"
#include "runner/fault_sweep.hpp"
#include "runner/report.hpp"
#include "sim/rng.hpp"

namespace mcan::can {
namespace {

using sim::BitLevel;
using sim::BitTime;
using sim::EventKind;

struct FaultyBus {
  WiredAndBus bus{sim::BusSpeed{500'000}};
  BitController tx{"tx"};
  BitController rx{"rx"};
  std::size_t received{0};

  FaultyBus() {
    tx.attach_to(bus);
    rx.attach_to(bus);
    rx.set_rx_callback([this](const CanFrame&, BitTime) { ++received; });
  }
};

std::vector<BitTime> fault_times(const sim::EventLog& log) {
  std::vector<BitTime> at;
  for (const auto& e : log.events()) {
    if (e.kind == EventKind::FaultInjected) at.push_back(e.at);
  }
  return at;
}

TEST(FaultKindNames, DistinctAndNonEmpty) {
  const FaultKind kinds[] = {FaultKind::RandomFlip, FaultKind::ScheduledFlip,
                             FaultKind::StuckBus, FaultKind::SampleSlip};
  for (std::size_t i = 0; i < std::size(kinds); ++i) {
    EXPECT_FALSE(to_string(kinds[i]).empty());
    for (std::size_t j = i + 1; j < std::size(kinds); ++j) {
      EXPECT_NE(to_string(kinds[i]), to_string(kinds[j]));
    }
  }
}

TEST(RngGeometric, MatchesRateAndIsDeterministic) {
  sim::Rng a{77};
  sim::Rng b{77};
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const auto gap = a.geometric(0.01);
    EXPECT_EQ(gap, b.geometric(0.01));
    sum += static_cast<double>(gap);
  }
  // Mean gap of Geometric(p) is (1-p)/p ~ 99.
  EXPECT_GT(sum / 10'000, 80.0);
  EXPECT_LT(sum / 10'000, 120.0);
  EXPECT_EQ(sim::Rng{1}.geometric(1.0), 0u);
}

TEST(FaultInjector, RandomFlipScheduleIsSeedDeterministic) {
  const auto run = [](std::uint64_t seed) {
    FaultyBus env;
    FaultSpec fs;
    fs.bit_error_rate = 0.005;
    fs.seed = seed;
    FaultInjector inj{fs, 0};
    env.bus.set_fault_injector(&inj);
    env.bus.run(20'000);
    return fault_times(env.bus.log());
  };
  const auto first = run(123);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run(123));
  EXPECT_NE(first, run(456));
}

TEST(FaultInjector, RandomFlipRateMatchesBer) {
  FaultyBus env;
  FaultSpec fs;
  fs.bit_error_rate = 1e-3;
  fs.seed = 9;
  FaultInjector inj{fs, 0};
  env.bus.set_fault_injector(&inj);
  env.bus.run(100'000);
  // Binomial(100k, 1e-3): mean 100, sigma ~10.
  EXPECT_GT(inj.stats().random_flips, 60u);
  EXPECT_LT(inj.stats().random_flips, 140u);
  EXPECT_EQ(inj.stats().random_flips,
            env.bus.log().count(EventKind::FaultInjected));
}

TEST(FaultInjector, ScheduledFlipDestroysTargetedFrame) {
  FaultyBus env;
  FaultSpec fs;
  // ID 0x555 alternates and DLC 8 follows with no stuff bit before the
  // data field, so the raw wire position is exact: data bit 2.
  fs.flips.push_back({0, Field::Data, 2});
  FaultInjector inj{fs, 0};
  env.bus.set_fault_injector(&inj);
  env.tx.enqueue(CanFrame::make(0x555, {0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA,
                                        0xAA, 0xAA}));
  env.bus.run(400);

  EXPECT_EQ(inj.stats().scheduled_flips, 1u);
  // The transmitter read back a level it did not send: bit error, TEC += 8,
  // then the automatic retransmission succeeds and decrements it again.
  EXPECT_GE(env.bus.log().count(EventKind::TxError, "tx"), 1u);
  EXPECT_EQ(env.tx.tec(), 7);
  EXPECT_EQ(env.received, 1u);
  EXPECT_EQ(env.tx.stats().frames_sent, 1u);
}

TEST(FaultInjector, StuckDominantChargesTransmitterPerIso10111) {
  FaultyBus env;
  FaultSpec fs;
  fs.stuck.push_back({40, 20, BitLevel::Dominant});
  FaultInjector inj{fs, 0};
  env.bus.set_fault_injector(&inj);
  env.tx.enqueue(CanFrame::make(0x555, {0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA,
                                        0xAA, 0xAA}));
  env.bus.run(600);

  EXPECT_EQ(inj.stats().stuck_bits, 20u);
  // One log entry per window, not per bit.
  std::size_t stuck_events = 0;
  for (const auto& e : env.bus.log().events()) {
    if (e.kind == EventKind::FaultInjected &&
        e.a == static_cast<std::int64_t>(FaultKind::StuckBus)) {
      ++stuck_events;
    }
  }
  EXPECT_EQ(stuck_events, 1u);
  // Mid-frame dominant takeover: bit error (+8), possibly further +8 steps
  // for runs of dominant after the error flag; the retransmission after the
  // window succeeds (-1).  Whatever the path, TEC ends at 8k - 1 > 0.
  EXPECT_GE(env.bus.log().count(EventKind::TxError, "tx"), 1u);
  EXPECT_GT(env.tx.tec(), 0);
  EXPECT_EQ((env.tx.tec() + 1) % 8, 0);
  EXPECT_EQ(env.received, 1u);
}

TEST(FaultInjector, StuckRecessiveSeversBusThenRecovers) {
  FaultyBus env;
  FaultSpec fs;
  fs.stuck.push_back({40, 20, BitLevel::Recessive});
  FaultInjector inj{fs, 0};
  env.bus.set_fault_injector(&inj);
  env.tx.enqueue(CanFrame::make(0x555, {0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA,
                                        0xAA, 0xAA}));
  env.bus.run(600);

  EXPECT_EQ(inj.stats().stuck_bits, 20u);
  // The transmitter's dominant bits never reach the bus: bit error, error
  // signalling is equally suppressed while the window lasts, and after it
  // ends the retransmission still delivers the frame.
  EXPECT_GE(env.bus.log().count(EventKind::TxError, "tx"), 1u);
  EXPECT_GT(env.tx.tec(), 0);
  EXPECT_EQ(env.received, 1u);
}

TEST(FaultInjector, SkewWithinResyncLimitCausesNoErrors) {
  FaultyBus env;
  FaultSpec fs;
  // CAN's tolerance condition: the drift accumulated over the 10 bits
  // between worst-case edges must stay inside the SJW.  0.01 * 10 <= 0.125.
  fs.skews.push_back({"rx", 0.01, 0.125});
  FaultInjector inj{fs, 0};
  env.bus.set_fault_injector(&inj);
  for (int i = 0; i < 5; ++i) {
    env.tx.enqueue(CanFrame::make(0x555, {0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA,
                                          0xAA, 0xAA}));
  }
  env.bus.run(1'000);

  EXPECT_EQ(inj.stats().sample_slips, 0u);
  EXPECT_EQ(env.received, 5u);
  EXPECT_EQ(env.rx.rec(), 0);
  EXPECT_EQ(env.tx.tec(), 0);
}

TEST(FaultInjector, SkewBeyondResyncLimitMisSamples) {
  FaultyBus env;
  FaultSpec fs;
  // 0.04/bit drift against a 0.01 SJW: resynchronization cannot keep up,
  // the phase error crosses half a bit mid-frame and the node starts
  // reading its neighbour's bit.
  fs.skews.push_back({"rx", 0.04, 0.01});
  FaultInjector inj{fs, 0};
  env.bus.set_fault_injector(&inj);
  for (int i = 0; i < 5; ++i) {
    env.tx.enqueue(CanFrame::make(0x555, {0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA,
                                          0xAA, 0xAA}));
  }
  env.bus.run(1'000);

  EXPECT_GT(inj.stats().sample_slips, 0u);
  bool slip_logged = false;
  for (const auto& e : env.bus.log().events()) {
    if (e.kind == EventKind::FaultInjected &&
        e.a == static_cast<std::int64_t>(FaultKind::SampleSlip)) {
      slip_logged = true;
      EXPECT_EQ(e.node, "rx");
    }
  }
  EXPECT_TRUE(slip_logged);
  // Mis-sampling an alternating bit pattern is never silent.
  EXPECT_GT(env.rx.rec(), 0);
}

TEST(FaultInjector, SkewOnlyAffectsTheNamedNode) {
  FaultyBus env;
  BitController other{"other"};
  other.attach_to(env.bus);
  FaultSpec fs;
  fs.skews.push_back({"rx", 0.04, 0.01});
  FaultInjector inj{fs, 0};
  env.bus.set_fault_injector(&inj);
  env.tx.enqueue(CanFrame::make(0x555, {0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA,
                                        0xAA, 0xAA}));
  env.bus.run(600);
  // Only the skewed node ever mis-samples.  (Its error *flags* still
  // disturb the other receivers — error signalling is global on CAN — but
  // every SampleSlip event must carry the skewed node's name.)
  EXPECT_GT(inj.stats().sample_slips, 0u);
  for (const auto& e : env.bus.log().events()) {
    if (e.kind == EventKind::FaultInjected &&
        e.a == static_cast<std::int64_t>(FaultKind::SampleSlip)) {
      EXPECT_EQ(e.node, "rx");
    }
  }
}

TEST(FaultVariant, BerZeroLeavesSpecUntouched) {
  const auto base = analysis::table2_experiment(2);
  const auto same = analysis::fault_variant(base, 0.0);
  EXPECT_EQ(same.label, base.label);
  EXPECT_EQ(same.fault.bit_error_rate, 0.0);
  EXPECT_FALSE(same.fault.any());
  const auto noisy = analysis::fault_variant(base, 1e-4);
  EXPECT_EQ(noisy.fault.bit_error_rate, 1e-4);
  EXPECT_NE(noisy.label, base.label);
}

TEST(FaultSweep, BerZeroSweepMatchesCleanCampaignByteForByte) {
  auto spec = analysis::table2_experiment(2);
  spec.duration = sim::Millis{200.0};

  runner::FaultSweepConfig sweep;
  sweep.base_specs = {spec};
  sweep.bers = {0.0};
  sweep.seeds = {0, 2};
  sweep.jobs = 1;

  runner::CampaignConfig plain;
  plain.specs = {spec};
  plain.seeds = {0, 2};
  plain.jobs = 1;

  const auto swept = runner::run_fault_sweep(sweep);
  EXPECT_EQ(runner::to_json(swept.campaign),
            runner::to_json(runner::run_campaign(plain)));
  ASSERT_EQ(swept.rows.size(), 1u);
  EXPECT_EQ(swept.rows[0].faults.total(), 0u);
}

TEST(FaultSweep, ErrorFrameStomperIsInvisibleToTheMonitor) {
  auto spec = analysis::error_frame_experiment();
  spec.duration = sim::Millis{500.0};
  const auto res = analysis::run_experiment(spec);
  // The stomper destroys the defender's frames from below the data-link
  // layer: plenty of stomps, no attack frame for the arbitration monitor
  // to classify, and the victim confines *itself* per §10.11.
  EXPECT_GT(res.error_frame_stomps, 0u);
  EXPECT_EQ(res.attacks_detected, 0u);
  EXPECT_TRUE(res.defender_bus_off);
}

}  // namespace
}  // namespace mcan::can
