// Unit tests for fault confinement (TEC/REC, Fig. 1b of the paper).
#include "can/fault.hpp"

#include <gtest/gtest.h>

namespace mcan::can {
namespace {

TEST(FaultConfinement, StartsErrorActiveAtZero) {
  FaultConfinement f;
  EXPECT_EQ(f.tec(), 0);
  EXPECT_EQ(f.rec(), 0);
  EXPECT_EQ(f.state(), ErrorState::ErrorActive);
}

TEST(FaultConfinement, SixteenTxErrorsReachErrorPassive) {
  // Paper Sec. IV-E: after 15 retransmissions (16 errors) the node is
  // error-passive (TEC = 128 > 127).
  FaultConfinement f;
  for (int i = 0; i < 15; ++i) f.on_transmitter_error();
  EXPECT_EQ(f.tec(), 120);
  EXPECT_EQ(f.state(), ErrorState::ErrorActive);
  f.on_transmitter_error();
  EXPECT_EQ(f.tec(), 128);
  EXPECT_EQ(f.state(), ErrorState::ErrorPassive);
}

TEST(FaultConfinement, ThirtyTwoTxErrorsReachBusOff) {
  // Paper: a total of 32 (re)transmission attempts confine the attacker.
  FaultConfinement f;
  for (int i = 0; i < 31; ++i) f.on_transmitter_error();
  EXPECT_EQ(f.tec(), 248);
  EXPECT_NE(f.state(), ErrorState::BusOff);
  f.on_transmitter_error();
  EXPECT_EQ(f.tec(), 256);
  EXPECT_EQ(f.state(), ErrorState::BusOff);
}

TEST(FaultConfinement, RecOver127IsErrorPassive) {
  FaultConfinement f;
  f.set_counters(0, 128);
  EXPECT_EQ(f.state(), ErrorState::ErrorPassive);
}

TEST(FaultConfinement, RecNeverCausesBusOff) {
  FaultConfinement f;
  f.set_counters(0, 100000);
  EXPECT_EQ(f.state(), ErrorState::ErrorPassive);
}

TEST(FaultConfinement, TxSuccessDecrementsToFloorZero) {
  FaultConfinement f;
  f.on_transmitter_error();
  for (int i = 0; i < 20; ++i) f.on_tx_success();
  EXPECT_EQ(f.tec(), 0);
}

TEST(FaultConfinement, RxSuccessCapsRecAt127WhenPassive) {
  FaultConfinement f;
  f.set_counters(0, 200);
  f.on_rx_success();
  EXPECT_EQ(f.rec(), 127);
  EXPECT_EQ(f.state(), ErrorState::ErrorActive);
}

TEST(FaultConfinement, ReturnToActiveWhenBothBelow128) {
  FaultConfinement f;
  f.set_counters(128, 0);
  EXPECT_EQ(f.state(), ErrorState::ErrorPassive);
  f.on_tx_success();
  EXPECT_EQ(f.tec(), 127);
  EXPECT_EQ(f.state(), ErrorState::ErrorActive);
}

TEST(FaultConfinement, ResetClearsBothCounters) {
  FaultConfinement f;
  f.set_counters(256, 50);
  EXPECT_EQ(f.state(), ErrorState::BusOff);
  f.reset();
  EXPECT_EQ(f.tec(), 0);
  EXPECT_EQ(f.rec(), 0);
  EXPECT_EQ(f.state(), ErrorState::ErrorActive);
}

TEST(FaultConfinement, DominantAfterErrorFlagPenalties) {
  FaultConfinement f;
  f.on_dominant_after_error_flag_tx();
  EXPECT_EQ(f.tec(), 8);
  f.on_dominant_after_error_flag_rx();
  EXPECT_EQ(f.rec(), 8);
}

TEST(FaultConfinement, RecSaturatesLikeAnEightBitRegister) {
  FaultConfinement f;
  for (int i = 0; i < 1000; ++i) f.on_dominant_after_error_flag_rx();
  EXPECT_EQ(f.rec(), 255);
  EXPECT_EQ(f.state(), ErrorState::ErrorPassive);
  for (int i = 0; i < 1000; ++i) f.on_receiver_error();
  EXPECT_EQ(f.rec(), 255);
  // A successful reception still pulls a saturated REC back to 127.
  f.on_rx_success();
  EXPECT_EQ(f.rec(), 127);
}

}  // namespace
}  // namespace mcan::can
