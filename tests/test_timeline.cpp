// Timeline-exporter regression: the Fig. 6 scenario (Exp. 5, two
// intertwined attackers) rendered as Chrome trace-event JSON for a fixed
// seed is diffed against a checked-in golden file, plus structural checks
// on the trace and JSONL dumps and the campaign-level determinism guarantee
// (metrics block included) across worker counts.
//
//   MICHICAN_UPDATE_GOLDEN=1 ./test_timeline
//
// rewrites tests/golden/fig6_trace_events.json from the current simulation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/experiments.hpp"
#include "obs/timeline.hpp"
#include "runner/campaign.hpp"
#include "runner/report.hpp"

#ifndef MICHICAN_GOLDEN_DIR
#error "MICHICAN_GOLDEN_DIR must point at tests/golden"
#endif

namespace mcan {
namespace {

constexpr std::uint64_t kGoldenSeed = 42;

std::string golden_path() {
  return std::string{MICHICAN_GOLDEN_DIR} + "/fig6_trace_events.json";
}

analysis::ExperimentResult run_fig6() {
  auto spec = analysis::table2_experiment(5);
  spec.duration = sim::Millis{120.0};  // one joint bus-off cycle
  spec.seed = kGoldenSeed;
  spec.capture_timeline = true;
  return analysis::run_experiment(spec);
}

/// Brace/bracket balance outside of strings — catches unterminated arrays,
/// stray commas closing objects early, and unescaped quotes without
/// needing a JSON parser dependency.
bool json_structure_balanced(const std::string& s) {
  int depth = 0;
  bool in_str = false;
  bool esc = false;
  for (const char c : s) {
    if (in_str) {
      if (esc) {
        esc = false;
      } else if (c == '\\') {
        esc = true;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_str;
}

TEST(Timeline, Fig6TraceMatchesGoldenFile) {
  const auto res = run_fig6();
  ASSERT_FALSE(res.timeline_json.empty());

  if (std::getenv("MICHICAN_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{golden_path(), std::ios::binary};
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << res.timeline_json;
    GTEST_SKIP() << "golden file regenerated: " << golden_path();
  }

  std::ifstream in{golden_path(), std::ios::binary};
  ASSERT_TRUE(in) << "missing golden file " << golden_path()
                  << " — regenerate with MICHICAN_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(res.timeline_json, expected.str())
      << "the Fig. 6 trace-event timeline changed; if the protocol change "
         "is intentional, rerun with MICHICAN_UPDATE_GOLDEN=1 and review "
         "the diff";
}

TEST(Timeline, TraceIsStructurallyValidChromeJson) {
  const auto res = run_fig6();
  const auto& json = res.timeline_json;
  EXPECT_TRUE(json_structure_balanced(json));
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("michican.trace.v1"), std::string::npos);
  // One track per node plus the bus track, named via metadata events.
  EXPECT_NE(json.find("\"name\":\"bus\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"attacker1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"attacker2\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"defender\""), std::string::npos);
  // The recording's protocol activity shows up as slices and instants.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"counterattack\""), std::string::npos);
  EXPECT_NE(json.find("\"bus-off\""), std::string::npos);
}

TEST(Timeline, JsonlHasOneLinePerEvent) {
  const auto res = run_fig6();
  ASSERT_FALSE(res.events_jsonl.empty());
  std::size_t lines = 0;
  std::istringstream in{res.events_jsonl};
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_TRUE(json_structure_balanced(line));
    ++lines;
  }
  EXPECT_EQ(lines, res.metrics.counter_value("bus.events"));
  EXPECT_NE(res.events_jsonl.find("\"kind\":\"BusOff\""), std::string::npos);
}

TEST(Timeline, ExportIsDeterministic) {
  const auto a = run_fig6();
  const auto b = run_fig6();
  EXPECT_EQ(a.timeline_json, b.timeline_json);
  EXPECT_EQ(a.events_jsonl, b.events_jsonl);
}

TEST(CampaignMetrics, ReportIsByteIdenticalAcrossWorkerCounts) {
  runner::CampaignConfig cfg;
  cfg.specs = {analysis::table2_experiment(5)};
  cfg.specs[0].duration = sim::Millis{250.0};
  cfg.seeds = {0, 4};

  cfg.jobs = 1;
  const auto serial = runner::run_campaign(cfg);
  cfg.jobs = 4;
  const auto parallel = runner::run_campaign(cfg);

  // Default JsonOptions exclude the runtime block: everything that remains
  // — the merged metrics registries included — must not depend on thread
  // scheduling.
  const auto a = runner::to_json(serial);
  const auto b = runner::to_json(parallel);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(a.find("bus.bits_simulated"), std::string::npos);
  EXPECT_NE(a.find("monitor.detection_bit"), std::string::npos);

  // The registry itself merged identically, not just its rendering.
  EXPECT_EQ(serial.specs.at(0).metrics.to_json(),
            parallel.specs.at(0).metrics.to_json());
  EXPECT_GT(serial.bits_simulated(), 0u);
}

TEST(CampaignMetrics, RerunCellReproducesTheTaskRecording) {
  runner::CampaignConfig cfg;
  cfg.specs = {analysis::table2_experiment(4)};
  cfg.specs[0].duration = sim::Millis{200.0};
  cfg.seeds = {3, 5};

  const auto report = runner::run_campaign(cfg);
  const auto& task = report.tasks.at(0);  // (spec 0, seed 3)
  ASSERT_TRUE(task.ok);

  const auto replay = runner::rerun_cell(cfg, 0, 3);
  EXPECT_EQ(replay.spec.seed, task.derived_seed);
  EXPECT_FALSE(replay.timeline_json.empty());
  EXPECT_EQ(replay.metrics.to_json(), task.result.metrics.to_json());

  EXPECT_THROW((void)runner::rerun_cell(cfg, 1, 3), std::out_of_range);
  EXPECT_THROW((void)runner::rerun_cell(cfg, 0, 5), std::out_of_range);
}

}  // namespace
}  // namespace mcan
