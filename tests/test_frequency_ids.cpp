// Tests for the frequency-IDS baseline and its structural limits versus
// MichiCAN (Table I: real-time capability and eradication).
#include "baseline/frequency_ids.hpp"

#include <gtest/gtest.h>

#include "attack/attacker.hpp"
#include "can/bus.hpp"
#include "can/periodic.hpp"

namespace mcan::baseline {
namespace {

using attack::Attacker;

struct IdsEnv {
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  FrequencyIds ids;
  can::BitController sender{"sender"};

  explicit IdsEnv(FrequencyIdsConfig cfg = {}) : ids{"ids", cfg} {
    ids.attach_to(bus);
    sender.attach_to(bus);
    can::attach_periodic(sender, can::CanFrame::make(0x123, {0x01}), 1000.0);
    can::attach_periodic(sender, can::CanFrame::make(0x200, {0x02}), 2500.0);
  }

  void train() {
    while (!ids.trained()) bus.step();
  }
};

TEST(FrequencyIds, NoAlarmOnNominalTraffic) {
  IdsEnv env;
  env.train();
  env.bus.run(60'000);
  EXPECT_FALSE(env.ids.alarmed());
}

TEST(FrequencyIds, UnknownIdRaisesAlarm) {
  IdsEnv env;
  env.train();
  can::BitController rogue{"rogue"};
  rogue.attach_to(env.bus);
  rogue.enqueue(can::CanFrame::make(0x050, {0xEE}));
  env.bus.run(2000);
  EXPECT_TRUE(env.ids.alarmed());
}

TEST(FrequencyIds, RateExplosionRaisesAlarm) {
  FrequencyIdsConfig cfg;
  cfg.alarm_on_unknown = false;  // force the rate rule to fire
  IdsEnv env{cfg};
  env.train();
  // The legitimate 0x123 suddenly floods at 20x its rate (fabrication).
  can::BitController rogue{"rogue"};
  rogue.attach_to(env.bus);
  can::attach_periodic(rogue, can::CanFrame::make(0x123, {0xEE}), 50.0);
  env.bus.run(20'000);
  EXPECT_TRUE(env.ids.alarmed());
}

TEST(FrequencyIds, DetectionNeedsCompleteFrames) {
  // The structural contrast with MichiCAN: the IDS can only alarm after at
  // least one complete malicious frame (plus training), never inside the
  // arbitration field of the first one.
  IdsEnv env;
  env.train();
  const auto t0 = env.bus.now();
  can::BitController rogue{"rogue"};
  rogue.attach_to(env.bus);
  rogue.enqueue(can::CanFrame::make(0x050, {0xEE, 0xEE}));
  env.bus.run(2000);
  ASSERT_TRUE(env.ids.alarmed());
  // First alarm strictly after one full frame (> 44 bits past injection).
  EXPECT_GT(env.ids.first_alarm(), t0 + 44);
}

TEST(FrequencyIds, DetectsButDoesNotEradicate) {
  // Under a persistent DoS flood the IDS alarms — and nothing changes:
  // the attacker stays error-active and the victim stays starved.
  IdsEnv env;
  env.train();
  can::BitController victim{"victim"};
  victim.attach_to(env.bus);
  can::attach_periodic(victim, can::CanFrame::make(0x300, {0x01}), 2000.0);
  Attacker atk{"attacker", Attacker::traditional_dos()};
  atk.attach_to(env.bus);
  const auto victim_before = victim.stats().frames_sent;

  env.bus.run(50'000);
  EXPECT_TRUE(env.ids.alarmed());
  EXPECT_FALSE(atk.node().is_bus_off());
  EXPECT_EQ(atk.node().tec(), 0);
  EXPECT_EQ(victim.stats().frames_sent, victim_before);  // still starved
}

TEST(FrequencyIds, TrainingCompletesAfterConfiguredWindows) {
  FrequencyIdsConfig cfg;
  cfg.training_windows = 2;
  cfg.window_bits = 1000;
  IdsEnv env{cfg};
  env.bus.run(1999);
  EXPECT_FALSE(env.ids.trained());
  env.bus.run(2000);
  EXPECT_TRUE(env.ids.trained());
}

}  // namespace
}  // namespace mcan::baseline
