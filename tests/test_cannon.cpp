// CANnon-style bit-injection bus-off attack (paper Sec. VI-A) and the
// threat-model boundary it marks for MichiCAN.
#include "attack/cannon.hpp"

#include <gtest/gtest.h>

#include "can/bus.hpp"
#include "can/periodic.hpp"
#include "core/michican_node.hpp"

namespace mcan::attack {
namespace {

using sim::BitTime;

struct CannonEnv {
  can::WiredAndBus bus{sim::BusSpeed{500'000}};
  can::BitController victim{"victim"};
  can::BitController peer{"peer"};
  can::BitController quiet{"quiet"};  // keeps ACKs alive once the victim
                                      // is confined

  explicit CannonEnv(double period_bits = 600.0) {
    victim.attach_to(bus);
    peer.attach_to(bus);
    quiet.attach_to(bus);
    can::attach_periodic(victim, can::CanFrame::make(0x123, {0xAA, 0xBB}),
                         period_bits);
  }
};

TEST(Cannon, SingleBitInjectionForcesVictimError) {
  CannonEnv env;
  CannonAttacker cannon{"cannon", {.victim_id = 0x123, .max_hits = 1}};
  env.bus.attach(cannon);
  env.bus.run(2000);
  EXPECT_EQ(cannon.hits(), 1);
  EXPECT_GE(env.victim.stats().tx_errors, 1u);
  // The frame is retransmitted and eventually delivered.
  EXPECT_GT(env.victim.stats().frames_sent, 0u);
}

TEST(Cannon, PersistentInjectionBusesOffVictim) {
  CannonEnv env{400.0};
  CannonAttacker cannon{"cannon", {.victim_id = 0x123}};
  env.bus.attach(cannon);
  env.bus.run(60'000);
  // The victim's own controller confines it — the attack works exactly
  // like MichiCAN's counterattack, but aimed at a legitimate ECU.
  EXPECT_GE(env.victim.stats().bus_off_entries, 1u);
}

TEST(Cannon, OtherTrafficIsUntouched) {
  CannonEnv env{400.0};
  can::attach_periodic(env.peer, can::CanFrame::make(0x300, {0x01}), 700.0);
  CannonAttacker cannon{"cannon", {.victim_id = 0x123}};
  env.bus.attach(cannon);
  env.bus.run(30'000);
  EXPECT_EQ(env.peer.stats().tx_errors, 0u);
  EXPECT_GT(env.peer.stats().frames_sent, 20u);
}

TEST(Cannon, OutsideMichiCanThreatModel) {
  // A MichiCAN defender cannot counterattack the injector: it transmits no
  // frame, so no malicious CAN ID ever appears during arbitration.  The
  // paper's answer is platform isolation (Fig. 3), not the counterattack.
  can::WiredAndBus bus{sim::BusSpeed{500'000}};
  const core::IvnConfig ivn{{0x123, 0x173, 0x300}};
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);
  can::BitController victim{"victim"};
  victim.attach_to(bus);
  can::attach_periodic(victim, can::CanFrame::make(0x123, {0xAA}), 400.0);

  CannonAttacker cannon{"cannon", {.victim_id = 0x123}};
  bus.attach(cannon);
  bus.run(60'000);

  EXPECT_GE(victim.stats().bus_off_entries, 1u);   // attack succeeds
  EXPECT_EQ(def.monitor().stats().counterattacks, 0u);
  EXPECT_EQ(def.controller().tec(), 0);
}

TEST(Cannon, IgnoresNonVictimIds) {
  CannonEnv env;
  can::attach_periodic(env.peer, can::CanFrame::make(0x300, {0x01}), 700.0);
  CannonAttacker cannon{"cannon", {.victim_id = 0x777}};  // nobody sends it
  env.bus.attach(cannon);
  env.bus.run(20'000);
  EXPECT_EQ(cannon.hits(), 0);
  EXPECT_EQ(env.victim.stats().tx_errors, 0u);
}

TEST(Cannon, CustomInjectionPositionInDataField) {
  CannonEnv env;
  // Inject 2 bits starting at unstuffed position 22 (inside data byte 0).
  CannonAttacker cannon{"cannon",
                        {.victim_id = 0x123, .inject_bits = 2,
                         .inject_pos = 22, .max_hits = 3}};
  env.bus.attach(cannon);
  env.bus.run(10'000);
  EXPECT_EQ(cannon.hits(), 3);
  EXPECT_GE(env.victim.stats().tx_errors, 1u);
}

}  // namespace
}  // namespace mcan::attack
