// End-to-end validation of the paper's six Table II experiments and the
// multi-attacker sweep (Sec. V-C), run through the reusable harness.
// Absolute timings are in bits; Table II's ms values are bits / 50 kbit/s.
#include "analysis/experiments.hpp"

#include <gtest/gtest.h>

#include "analysis/theory.hpp"

namespace mcan::analysis {
namespace {

class Table2Experiment : public ::testing::TestWithParam<int> {};

TEST_P(Table2Experiment, AttackerBusedOffDefenderHealthy) {
  auto spec = table2_experiment(GetParam());
  const auto res = run_experiment(spec);

  for (const auto& a : res.attackers) {
    EXPECT_GE(a.busoff_count, 1u) << a.node;
    // Every cycle confines the attacker within the theoretical bounds:
    // at least the best-case isolated total, and well under the paper's
    // feasibility ceiling (2929 bits max observed in Table II).
    EXPECT_GE(a.busoff_bits.min, 16 * (theory::kBestErrorActiveBits +
                                       theory::kBestErrorPassiveBits))
        << a.node;
    EXPECT_LE(a.busoff_bits.max, 3000.0) << a.node;
  }
  // The counterattack never costs the defender its bus access.
  EXPECT_FALSE(res.defender_bus_off);
  EXPECT_GT(res.counterattacks, 30u);
  // Detection happens inside the 11-bit ID field.
  EXPECT_GT(res.mean_detection_bit, 0.0);
  EXPECT_LE(res.mean_detection_bit, 11.0);
  // Restbus nodes (benign ECUs) must never be pushed into bus-off.
  EXPECT_FALSE(res.restbus_any_bus_off);
}

INSTANTIATE_TEST_SUITE_P(AllSix, Table2Experiment,
                         ::testing::Values(1, 2, 3, 4, 5, 6),
                         [](const ::testing::TestParamInfo<int>& p) {
                           return "Exp" + std::to_string(p.param);
                         });

TEST(Experiments, IsolatedSpoofMatchesTheoryBand) {
  // Exp. 2: single attacker, no restbus.  Paper: mu = 24.2 ms at 50 kbit/s
  // (= 1210 bits), worst-case bound 1248 bits + receiver error flags.
  const auto res = run_experiment(table2_experiment(2));
  ASSERT_EQ(res.attackers.size(), 1u);
  const auto& a = res.attackers[0];
  EXPECT_GE(a.busoff_bits.mean, 1100.0);
  EXPECT_LE(a.busoff_bits.mean, 1500.0);
  // Low variance without restbus interference.
  EXPECT_LE(a.busoff_bits.stddev, 60.0);
  // 32 transmission attempts per cycle.
  EXPECT_NEAR(static_cast<double>(a.retransmissions) /
                  static_cast<double>(a.busoff_count),
              32.0, 3.0);
}

TEST(Experiments, RestbusIncreasesVarianceNotMean) {
  const auto iso = run_experiment(table2_experiment(4));
  const auto rb = run_experiment(table2_experiment(3));
  ASSERT_EQ(iso.attackers.size(), 1u);
  ASSERT_EQ(rb.attackers.size(), 1u);
  // Means are comparable (paper: 24.9 vs 25.1 ms)...
  EXPECT_NEAR(rb.attackers[0].busoff_bits.mean,
              iso.attackers[0].busoff_bits.mean,
              0.25 * iso.attackers[0].busoff_bits.mean);
  // ...but the restbus runs show a larger spread (paper: sigma 1.39 vs
  // 0.45 ms) and a larger maximum.
  EXPECT_GT(rb.attackers[0].busoff_bits.stddev,
            iso.attackers[0].busoff_bits.stddev);
  EXPECT_GE(rb.attackers[0].busoff_bits.max,
            iso.attackers[0].busoff_bits.max);
}

TEST(Experiments, TwoAttackersIntertwineAndTakeLonger) {
  // Exp. 5 vs Exp. 4: the mean bus-off time grows (paper: ~50 %) because
  // the two bus-off sequences interleave — but it does not double.
  const auto single = run_experiment(table2_experiment(4));
  const auto dual = run_experiment(table2_experiment(5));
  ASSERT_EQ(dual.attackers.size(), 2u);
  const double base = single.attackers[0].busoff_bits.mean;
  for (const auto& a : dual.attackers) {
    EXPECT_GT(a.busoff_bits.mean, 1.15 * base) << a.node;
    EXPECT_LT(a.busoff_bits.mean, 2.0 * base) << a.node;
  }
}

TEST(Experiments, AlternatingIdsBehaveLikeSingleAttacker) {
  // Exp. 6: both IDs are bused off separately; each cycle looks like
  // Exp. 4 (paper: 24.9 ms in both).  Note: 0x050 ends in four dominant
  // bits, so the counterattack trips the recessive stuff bit right after
  // RTR (the paper's *best case*, Sec. IV-E), while 0x051 errs at the
  // first DLC bit (worst case) — the cycle lengths are therefore bimodal
  // with a spread of a few bits per retransmission.
  const auto res = run_experiment(table2_experiment(6));
  ASSERT_EQ(res.attackers.size(), 1u);
  const auto& a = res.attackers[0];
  EXPECT_GE(a.busoff_count, 2u);
  EXPECT_GE(a.busoff_bits.mean, 1100.0);
  EXPECT_LE(a.busoff_bits.mean, 1500.0);
  EXPECT_LE(a.busoff_bits.stddev, 80.0);
  // Both modes stay within the theory band [best-case, worst-case+slack].
  EXPECT_GE(a.busoff_bits.min, 16 * (theory::kBestErrorActiveBits +
                                     theory::kBestErrorPassiveBits));
  EXPECT_LE(a.busoff_bits.max, theory::isolated_total_bits() + 100.0);
}

TEST(Experiments, MultiAttackerScalesSubLinearly) {
  // Sec. V-C: A=3 -> 3515 bits, A=4 -> 4660 bits total; A >= 5 would break
  // the 10 ms deadline translated to the 50 kbit/s bus.
  const auto a2 = run_experiment(multi_attacker_spec(2));
  const auto a3 = run_experiment(multi_attacker_spec(3));
  const auto a4 = run_experiment(multi_attacker_spec(4));
  EXPECT_GT(a3.first_cycle_total_bits, a2.first_cycle_total_bits);
  EXPECT_GT(a4.first_cycle_total_bits, a3.first_cycle_total_bits);
  // Sub-linear growth: doubling attackers does not double the total.
  EXPECT_LT(a4.first_cycle_total_bits, 2.0 * a2.first_cycle_total_bits);
  // Same order of magnitude as the paper's 3515 / 4660 bits.
  EXPECT_GT(a3.first_cycle_total_bits, 2000.0);
  EXPECT_LT(a3.first_cycle_total_bits, 6000.0);
  EXPECT_GT(a4.first_cycle_total_bits, a3.first_cycle_total_bits + 500.0);
  EXPECT_LT(a4.first_cycle_total_bits, 8000.0);
}

TEST(Experiments, DefenseDisabledAttackPersists) {
  auto spec = table2_experiment(4);
  spec.defense_enabled = false;
  const auto res = run_experiment(spec);
  ASSERT_EQ(res.attackers.size(), 1u);
  EXPECT_EQ(res.attackers[0].busoff_count, 0u);
  EXPECT_EQ(res.counterattacks, 0u);
}

TEST(Experiments, TheoryTableIIIConstants) {
  EXPECT_DOUBLE_EQ(theory::isolated_total_bits(), 1248.0);
  EXPECT_DOUBLE_EQ(theory::t_active(0), 35.0);
  EXPECT_DOUBLE_EQ(theory::t_passive(0, 0), 43.0);
  EXPECT_DOUBLE_EQ(theory::t_active(2, 125.0), 285.0);
  EXPECT_DOUBLE_EQ(theory::restbus_total_bits({}, {}), 1248.0);
  // HP attacker with no interruptions: 560 + 16 * 43.
  EXPECT_DOUBLE_EQ(theory::exp5_hp_total_bits({}, 52.0), 1248.0);
  // 10 ms deadline at 500 kbit/s = 5000 bits (Sec. V-C).
  EXPECT_DOUBLE_EQ(theory::deadline_budget_bits(10.0, 500e3), 5000.0);
}

}  // namespace
}  // namespace mcan::analysis
