// Unit tests for the CAN frame model.
#include "can/frame.hpp"

#include <gtest/gtest.h>

namespace mcan::can {
namespace {

TEST(CanFrame, MakeCopiesBytesAndSetsDlc) {
  const auto f = CanFrame::make(0x173, {0x01, 0x02, 0x03});
  EXPECT_EQ(f.id, 0x173);
  EXPECT_EQ(f.dlc, 3);
  EXPECT_FALSE(f.rtr);
  EXPECT_EQ(f.data[0], 0x01);
  EXPECT_EQ(f.data[2], 0x03);
  EXPECT_TRUE(f.valid());
}

TEST(CanFrame, MakePatternFillsMsbFirst) {
  const auto f = CanFrame::make_pattern(0x064, 8, 0x0102030405060708ull);
  EXPECT_EQ(f.data[0], 0x01);
  EXPECT_EQ(f.data[7], 0x08);
}

TEST(CanFrame, MakePatternPartialDlc) {
  const auto f = CanFrame::make_pattern(0x064, 2, 0xAABB000000000000ull);
  EXPECT_EQ(f.dlc, 2);
  EXPECT_EQ(f.data[0], 0xAA);
  EXPECT_EQ(f.data[1], 0xBB);
}

TEST(CanFrame, RemoteFrameHasEmptyPayload) {
  const auto f = CanFrame::make_remote(0x100, 4);
  EXPECT_TRUE(f.rtr);
  EXPECT_EQ(f.dlc, 4);
  EXPECT_TRUE(f.payload().empty());
}

TEST(CanFrame, EqualityIgnoresBytesBeyondDlc) {
  auto a = CanFrame::make(0x10, {0x11});
  auto b = a;
  b.data[5] = 0xFF;  // beyond dlc
  EXPECT_EQ(a, b);
  b.data[0] = 0x00;
  EXPECT_FALSE(a == b);
}

TEST(CanFrame, InvalidIdRejected) {
  CanFrame f;
  f.id = 0x800;  // 12 bits
  EXPECT_FALSE(f.valid());
}

TEST(CanFrame, ToStringContainsIdAndPayload) {
  const auto f = CanFrame::make(0x173, {0xAB});
  const auto s = f.to_string();
  EXPECT_NE(s.find("0x173"), std::string::npos);
  EXPECT_NE(s.find("ab"), std::string::npos);
}

}  // namespace
}  // namespace mcan::can
