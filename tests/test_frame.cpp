// Unit tests for the CAN frame model.
#include "can/frame.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mcan::can {
namespace {

TEST(CanFrame, MakeCopiesBytesAndSetsDlc) {
  const auto f = CanFrame::make(0x173, {0x01, 0x02, 0x03});
  EXPECT_EQ(f.id, 0x173);
  EXPECT_EQ(f.dlc, 3);
  EXPECT_FALSE(f.rtr);
  EXPECT_EQ(f.data[0], 0x01);
  EXPECT_EQ(f.data[2], 0x03);
  EXPECT_TRUE(f.valid());
}

TEST(CanFrame, MakePatternFillsMsbFirst) {
  const auto f = CanFrame::make_pattern(0x064, 8, 0x0102030405060708ull);
  EXPECT_EQ(f.data[0], 0x01);
  EXPECT_EQ(f.data[7], 0x08);
}

TEST(CanFrame, MakePatternPartialDlc) {
  const auto f = CanFrame::make_pattern(0x064, 2, 0xAABB000000000000ull);
  EXPECT_EQ(f.dlc, 2);
  EXPECT_EQ(f.data[0], 0xAA);
  EXPECT_EQ(f.data[1], 0xBB);
}

TEST(CanFrame, RemoteFrameHasEmptyPayload) {
  const auto f = CanFrame::make_remote(0x100, 4);
  EXPECT_TRUE(f.rtr);
  EXPECT_EQ(f.dlc, 4);
  EXPECT_TRUE(f.payload().empty());
}

TEST(CanFrame, EqualityIgnoresBytesBeyondDlc) {
  auto a = CanFrame::make(0x10, {0x11});
  auto b = a;
  b.data[5] = 0xFF;  // beyond dlc
  EXPECT_EQ(a, b);
  b.data[0] = 0x00;
  EXPECT_FALSE(a == b);
}

TEST(CanFrame, InvalidIdRejected) {
  CanFrame f;
  f.id = 0x800;  // 12 bits
  EXPECT_FALSE(f.valid());
}

TEST(CanFrame, FactoriesThrowOnInvalidArguments) {
  // One enforcement policy across every factory: std::invalid_argument in
  // all build types, not just a debug assert.
  EXPECT_THROW((void)CanFrame::make(0x800, {0x01}), std::invalid_argument);
  EXPECT_THROW((void)CanFrame::make_pattern(0x800, 1, 0),
               std::invalid_argument);
  EXPECT_THROW((void)CanFrame::make_pattern(0x100, 9, 0),
               std::invalid_argument);
  EXPECT_THROW((void)CanFrame::make_remote(0x800), std::invalid_argument);
  EXPECT_THROW((void)CanFrame::make_remote(0x100, 9), std::invalid_argument);
  EXPECT_THROW((void)CanFrame::make_ext(0x2000'0000, {}),
               std::invalid_argument);
  EXPECT_THROW((void)CanFrame::make(0x100, {1, 2, 3, 4, 5, 6, 7, 8, 9}),
               std::invalid_argument);
}

TEST(CanFrame, FactoriesAcceptBoundaryArguments) {
  EXPECT_NO_THROW((void)CanFrame::make(0x7FF, {1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_NO_THROW((void)CanFrame::make_pattern(0x7FF, 8, ~0ull));
  EXPECT_NO_THROW((void)CanFrame::make_remote(0x7FF, 8));
  EXPECT_NO_THROW((void)CanFrame::make_ext(0x1FFF'FFFF, {0xFF}));
}

TEST(CanFrame, ToStringContainsIdAndPayload) {
  const auto f = CanFrame::make(0x173, {0xAB});
  const auto s = f.to_string();
  EXPECT_NE(s.find("0x173"), std::string::npos);
  EXPECT_NE(s.find("ab"), std::string::npos);
}

}  // namespace
}  // namespace mcan::can
