// Tests for the restbus substrate: communication matrices, the synthetic
// vehicle set, analytic bus load (Sec. V-E) and traffic replay (Sec. V-A).
#include <gtest/gtest.h>

#include "can/bus.hpp"
#include "restbus/comm_matrix.hpp"
#include "restbus/replay.hpp"
#include "restbus/vehicles.hpp"

namespace mcan::restbus {
namespace {

TEST(CommMatrix, AvgFrameBitsMatchesPaperForDlc8) {
  // Paper Sec. V-C: an average CAN frame is ~125 bits including stuffing.
  EXPECT_NEAR(avg_frame_bits(8), 125.0, 4.0);
  EXPECT_LT(avg_frame_bits(0), avg_frame_bits(8));
}

TEST(CommMatrix, BusLoadFormula) {
  // One 8-byte message every 10 ms at 500 kbit/s:
  // b = 125 bits / (500000 * 0.010) = 2.5 %.
  CommMatrix m{"t", {{0x100, 10.0, 8, "m", "ecu"}}};
  EXPECT_NEAR(m.bus_load(500e3), avg_frame_bits(8) / 5000.0, 1e-9);
}

TEST(CommMatrix, ScaledToLoadHitsTarget) {
  auto m = vehicle_matrix(Vehicle::D, 1);
  const auto scaled = m.scaled_to_load(50e3, 0.12);
  EXPECT_NEAR(scaled.bus_load(50e3), 0.12, 1e-6);
  // Relative periods preserved.
  const auto& a = m.messages()[0];
  const auto& b = m.messages()[1];
  const auto& a2 = scaled.messages()[0];
  const auto& b2 = scaled.messages()[1];
  EXPECT_NEAR(a.period_ms / b.period_ms, a2.period_ms / b2.period_ms, 1e-9);
}

TEST(CommMatrix, WithoutRemovesExactlyOneId) {
  auto m = vehicle_matrix(Vehicle::D, 1);
  ASSERT_TRUE(m.has_id(0x173));
  const auto filtered = m.without(0x173);
  EXPECT_FALSE(filtered.has_id(0x173));
  EXPECT_EQ(filtered.size(), m.size() - 1);
}

TEST(CommMatrix, ValidateCatchesDuplicates) {
  CommMatrix dup{"t",
                 {{0x100, 10, 8, "a", "e1"}, {0x100, 20, 8, "b", "e2"}}};
  EXPECT_NE(dup.validate().find("duplicate"), std::string::npos);
}

TEST(CommMatrix, ValidateCatchesBadFields) {
  EXPECT_NE(CommMatrix("t", {{0x100, -5, 8, "a", "e"}}).validate(), "");
  EXPECT_NE(CommMatrix("t", {{0x100, 10, 9, "a", "e"}}).validate(), "");
  EXPECT_NE(CommMatrix("t", {{0x100, 10, 8, "a", ""}}).validate(), "");
  EXPECT_EQ(CommMatrix("t", {{0x100, 10, 8, "a", "e"}}).validate(), "");
}

TEST(Vehicles, AllEightMatricesAreValid) {
  const auto all = all_vehicle_matrices();
  ASSERT_EQ(all.size(), 8u);
  for (const auto& m : all) {
    EXPECT_EQ(m.validate(), "") << m.bus_name();
    EXPECT_GE(m.size(), 20u) << m.bus_name();
  }
}

TEST(Vehicles, GenerationIsDeterministic) {
  const auto a = vehicle_matrix(Vehicle::B, 1);
  const auto b = vehicle_matrix(Vehicle::B, 1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.messages()[i].id, b.messages()[i].id);
    EXPECT_EQ(a.messages()[i].period_ms, b.messages()[i].period_ms);
  }
}

TEST(Vehicles, VehDBus1CarriesTheDefendersId) {
  EXPECT_TRUE(vehicle_matrix(Vehicle::D, 1).has_id(0x173));
}

TEST(Vehicles, AttackIdsAreReserved) {
  // The Table II attack IDs must not be legitimate anywhere, or the DoS
  // experiments would misclassify.
  for (const auto& m : all_vehicle_matrices()) {
    for (const int id : {0x000, 0x050, 0x051, 0x064, 0x066, 0x067, 0x25F}) {
      EXPECT_FALSE(m.has_id(static_cast<can::CanId>(id)))
          << m.bus_name() << " id " << id;
    }
  }
}

TEST(Vehicles, PowertrainHasTightDeadlines) {
  // Sec. V-C: the tightest periodic deadline observed is 10 ms.
  EXPECT_EQ(vehicle_matrix(Vehicle::D, 1).min_deadline_ms(), 10.0);
}

TEST(Vehicles, LoadsAreRealistic) {
  for (const auto& m : all_vehicle_matrices()) {
    const double load = m.bus_load(500e3);
    EXPECT_GT(load, 0.01) << m.bus_name();
    EXPECT_LT(load, 0.50) << m.bus_name();  // below the 80 % bound
  }
}

TEST(RestbusSim, ReplaysAllTransmitters) {
  can::WiredAndBus bus{sim::BusSpeed{500'000}};
  const auto m = vehicle_matrix(Vehicle::A, 1);
  RestbusSim sim{m, bus};
  EXPECT_EQ(sim.ecu_count(), m.transmitters().size());
}

TEST(RestbusSim, MeasuredLoadTracksAnalyticLoad) {
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  const auto m = vehicle_matrix(Vehicle::D, 1).scaled_to_load(50e3, 0.20);
  RestbusSim sim{m, bus};
  bus.run_for(sim::Millis{2000.0});
  const double measured = bus.trace().busy_fraction(0, bus.now());
  EXPECT_NEAR(measured, 0.20, 0.06);
  EXPECT_FALSE(sim.any_bus_off());
  EXPECT_EQ(sim.total_stats().tx_errors, 0u);
}

TEST(RestbusSim, DeliversFramesLossFree) {
  can::WiredAndBus bus{sim::BusSpeed{500'000}};
  const auto m = vehicle_matrix(Vehicle::C, 2);
  RestbusSim sim{m, bus};
  can::BitController observer{"obs"};
  observer.attach_to(bus);
  std::uint64_t delivered = 0;
  observer.set_rx_callback(
      [&](const can::CanFrame&, sim::BitTime) { ++delivered; });
  bus.run_for(sim::Millis{500.0});
  const auto stats = sim.total_stats();
  EXPECT_EQ(delivered, stats.frames_sent);
  EXPECT_EQ(stats.dropped_frames, 0u);
}

}  // namespace
}  // namespace mcan::restbus
