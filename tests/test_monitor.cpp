// Direct unit tests of the Algorithm-1 bit monitor: synchronization,
// stuff-bit removal, FSM integration, counterattack arming and release.
// The monitor is driven with hand-crafted bit streams, without a bus.
#include "core/monitor.hpp"

#include <gtest/gtest.h>

#include "can/bitstream.hpp"
#include "can/frame.hpp"
#include "sim/rng.hpp"

namespace mcan::core {
namespace {

using sim::BitLevel;

struct MonitorHarness {
  DetectionFsm fsm;
  mcu::PioController pio;
  BitMonitor monitor;
  sim::BitTime now{0};

  explicit MonitorHarness(const IdRangeSet& ranges, MonitorConfig cfg = {})
      : fsm(DetectionFsm::build(ranges)), monitor(fsm, pio, cfg) {}

  void idle(int bits) {
    for (int i = 0; i < bits; ++i) {
      monitor.on_bit(now++, BitLevel::Recessive);
    }
  }

  /// Feed a frame's wire bits, returning the per-bit TX-mux states.
  std::vector<bool> feed_frame(const can::CanFrame& f) {
    std::vector<bool> mux;
    for (const auto& b : can::wire_bits(f)) {
      monitor.on_bit(now++, b.level);
      mux.push_back(pio.tx_mux_enabled());
    }
    return mux;
  }
};

IdRangeSet own_id_only(can::CanId id) {
  IdRangeSet s;
  s.add(id);
  return s;
}

TEST(BitMonitor, RequiresElevenRecessiveBeforeSof) {
  MonitorHarness h{own_id_only(0x173)};
  // Dominant bits with no idle run: not a SOF.
  for (int i = 0; i < 5; ++i) h.monitor.on_bit(h.now++, BitLevel::Dominant);
  EXPECT_EQ(h.monitor.stats().frames_observed, 0u);
  h.idle(11);
  h.monitor.on_bit(h.now++, BitLevel::Dominant);
  EXPECT_EQ(h.monitor.stats().frames_observed, 1u);
}

TEST(BitMonitor, BenignFrameNoCounterattack) {
  MonitorHarness h{own_id_only(0x173)};
  h.idle(12);
  const auto mux = h.feed_frame(can::CanFrame::make(0x2A0, {0x11, 0x22}));
  for (const bool m : mux) EXPECT_FALSE(m);
  EXPECT_EQ(h.monitor.stats().attacks_detected, 0u);
  EXPECT_EQ(h.monitor.stats().counterattacks, 0u);
}

TEST(BitMonitor, MaliciousFrameArmsAtRtrAndReleasesAfterWindow) {
  MonitorHarness h{own_id_only(0x173)};
  h.idle(12);
  const auto frame = can::CanFrame::make(0x173, {0xDE, 0xAD});
  const auto wire = can::wire_bits(frame);
  const auto mux = h.feed_frame(frame);
  EXPECT_EQ(h.monitor.stats().attacks_detected, 1u);
  EXPECT_EQ(h.monitor.stats().counterattacks, 1u);

  // Find the raw index of the RTR bit: the mux must engage right there and
  // stay on for exactly attack_bits raw bits.
  std::size_t rtr_raw = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    if (wire[i].field == can::Field::Rtr) {
      rtr_raw = i;
      break;
    }
  }
  int on_bits = 0;
  for (std::size_t i = 0; i < mux.size(); ++i) {
    if (mux[i]) {
      ++on_bits;
      EXPECT_GE(i, rtr_raw);
      EXPECT_LT(i, rtr_raw + 8u);
    }
  }
  EXPECT_EQ(on_bits, 7);  // MonitorConfig default window
}

TEST(BitMonitor, StuffBitsDoNotShiftTheWindow) {
  // ID 0x000 maximizes stuff bits inside the arbitration field; the arm
  // position counts *unstuffed* bits, so the window must still start at
  // the RTR wire position.
  IdRangeSet all;
  all.add(0x000, 0x0FF);
  MonitorHarness h{all};
  h.idle(12);
  const auto frame = can::CanFrame::make(0x000, {0x00});
  const auto wire = can::wire_bits(frame);
  const auto mux = h.feed_frame(frame);
  std::size_t rtr_raw = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    if (wire[i].field == can::Field::Rtr && !wire[i].is_stuff) {
      rtr_raw = i;
      break;
    }
  }
  ASSERT_GT(rtr_raw, 12u);  // stuff bits pushed RTR beyond raw index 12
  EXPECT_TRUE(mux[rtr_raw + 1]);  // armed right after the RTR sample
  EXPECT_EQ(h.monitor.stats().counterattacks, 1u);
}

TEST(BitMonitor, DetectionBitPositionReported) {
  // D = upper half: one ID bit suffices.
  IdRangeSet d;
  d.add(0x400, 0x7FF);
  MonitorHarness h{d};
  h.idle(12);
  h.feed_frame(can::CanFrame::make(0x7A5, {0x01}));
  EXPECT_EQ(h.monitor.stats().attacks_detected, 1u);
  EXPECT_EQ(h.monitor.stats().detection_bit_sum, 1u);
}

TEST(BitMonitor, SelfTransmissionSuppressed) {
  MonitorHarness h{own_id_only(0x173)};
  bool transmitting = true;
  h.monitor.set_self_transmitting([&] { return transmitting; });
  h.idle(12);
  h.feed_frame(can::CanFrame::make(0x173, {0x00}));
  EXPECT_EQ(h.monitor.stats().suppressed_self, 1u);
  EXPECT_EQ(h.monitor.stats().counterattacks, 0u);

  transmitting = false;
  h.idle(12);
  h.feed_frame(can::CanFrame::make(0x173, {0x00}));
  EXPECT_EQ(h.monitor.stats().counterattacks, 1u);
}

TEST(BitMonitor, PreventionDisabledStillDetects) {
  MonitorConfig cfg;
  cfg.prevention_enabled = false;
  MonitorHarness h{own_id_only(0x173), cfg};
  h.idle(12);
  const auto mux = h.feed_frame(can::CanFrame::make(0x173, {0x42}));
  EXPECT_EQ(h.monitor.stats().attacks_detected, 1u);
  EXPECT_EQ(h.monitor.stats().counterattacks, 0u);
  for (const bool m : mux) EXPECT_FALSE(m);
}

TEST(BitMonitor, ResynchronizesAfterForeignErrorFrame) {
  MonitorHarness h{own_id_only(0x173)};
  h.idle(12);
  // A frame that dies in an error flag: SOF + a few bits + 6 dominant.
  for (const int bit : {0, 1, 0, 1, 1, 0, 0, 0, 0, 0, 0}) {
    h.monitor.on_bit(h.now++, sim::from_bit(bit));
  }
  EXPECT_FALSE(h.monitor.counterattack_active());
  // Error delimiter + IFS re-idles the bus; the next frame is tracked.
  h.idle(12);
  h.feed_frame(can::CanFrame::make(0x173, {0x01}));
  EXPECT_EQ(h.monitor.stats().frames_observed, 2u);
  EXPECT_EQ(h.monitor.stats().counterattacks, 1u);
}

TEST(BitMonitor, BackToBackFramesAreBothObserved) {
  MonitorHarness h{own_id_only(0x173)};
  h.idle(12);
  h.feed_frame(can::CanFrame::make(0x2A0, {0x01}));
  h.idle(3);  // IFS only: ACK delim + EOF already supplied 8 recessive bits
  h.feed_frame(can::CanFrame::make(0x300, {0x02}));
  EXPECT_EQ(h.monitor.stats().frames_observed, 2u);
}

TEST(BitMonitor, WindowWidthConfigurable) {
  MonitorConfig cfg;
  cfg.attack_bits = 3;
  MonitorHarness h{own_id_only(0x173), cfg};
  h.idle(12);
  const auto mux = h.feed_frame(can::CanFrame::make(0x173, {0xFF}));
  int on_bits = 0;
  for (const bool m : mux) on_bits += m ? 1 : 0;
  EXPECT_EQ(on_bits, 3);
}

TEST(BitMonitor, CounterattackNeverTransmitsFrames) {
  // The monitor only pulls the TX line low; it never produces an SOF/ID
  // sequence of its own.  After the window the contribution is recessive.
  MonitorHarness h{own_id_only(0x173)};
  h.idle(12);
  h.feed_frame(can::CanFrame::make(0x173, {0x55, 0xAA}));
  EXPECT_EQ(h.pio.tx_contribution(), BitLevel::Recessive);
  EXPECT_FALSE(h.pio.tx_mux_enabled());
  // Exactly two mux toggles per counterattack: enable + disable.
  EXPECT_EQ(h.pio.tx_mux_toggles(), 2u);
}

TEST(BitMonitor, FsmBitsCountedForCpuModel) {
  MonitorHarness h{own_id_only(0x173)};
  h.idle(12);
  h.feed_frame(can::CanFrame::make(0x2A0, {0x00}));
  const auto& s = h.monitor.stats();
  EXPECT_GT(s.fsm_bits, 0u);
  EXPECT_GT(s.idle_bits, 0u);
  EXPECT_GT(s.track_bits, 0u);
}


TEST(BitMonitor, ExtendedFrameWithoutExtFsmEndsQuietly) {
  // Paper-mode monitor (no extended FSM): an extended frame is released at
  // the IDE bit and the monitor resynchronizes on the next frame.
  MonitorHarness h{own_id_only(0x173)};
  h.idle(12);
  can::CanFrame ext;
  ext.id = 0x00012345;
  ext.extended = true;
  ext.dlc = 2;
  const auto mux = h.feed_frame(ext);
  for (const bool m : mux) EXPECT_FALSE(m);
  EXPECT_EQ(h.monitor.stats().counterattacks, 0u);
  // Next (standard, malicious) frame is still caught.
  h.idle(12);
  h.feed_frame(can::CanFrame::make(0x173, {0x42}));
  EXPECT_EQ(h.monitor.stats().counterattacks, 1u);
}

TEST(BitMonitor, ExtendedGuardArmsAtExtendedRtr) {
  IdRangeSet ext_d;
  ext_d.add(0x0, 0x000FFFFF);  // low extended IDs are malicious
  const auto ext_fsm = DetectionFsm::build(ext_d, can::kExtIdBits);
  MonitorHarness h{own_id_only(0x173)};
  h.monitor.set_extended_fsm(&ext_fsm);
  h.idle(12);
  can::CanFrame ext;
  ext.id = 0x00000042;
  ext.extended = true;
  ext.dlc = 1;
  const auto wire = can::wire_bits(ext);
  const auto mux = h.feed_frame(ext);
  EXPECT_EQ(h.monitor.stats().counterattacks, 1u);
  // The window must engage at/after the extended RTR wire position.
  std::size_t rtr_raw = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    if (wire[i].field == can::Field::Rtr && !wire[i].is_stuff) rtr_raw = i;
  }
  for (std::size_t i = 0; i < mux.size(); ++i) {
    if (mux[i]) {
      EXPECT_GE(i, rtr_raw);
    }
  }
}

TEST(BitMonitor, StuffErrorDuringExtendedTrackingResyncs) {
  IdRangeSet ext_d;
  ext_d.add(0x0, 0x000FFFFF);
  const auto ext_fsm = DetectionFsm::build(ext_d, can::kExtIdBits);
  MonitorHarness h{own_id_only(0x173)};
  h.monitor.set_extended_fsm(&ext_fsm);
  h.idle(12);
  // SOF + base + SRR + IDE(recessive) then six dominant bits: a foreign
  // error frame kills the extended frame mid-ID.
  const int prefix[] = {0, 1,0,1,0,1,0,1,0,1,0,1, 1, 1};
  for (const int b : prefix) h.monitor.on_bit(h.now++, sim::from_bit(b));
  for (int i = 0; i < 6; ++i) {
    h.monitor.on_bit(h.now++, BitLevel::Dominant);
  }
  EXPECT_FALSE(h.monitor.counterattack_active());
  h.idle(12);
  h.feed_frame(can::CanFrame::make(0x173, {0x01}));
  EXPECT_EQ(h.monitor.stats().counterattacks, 1u);
}

}  // namespace
}  // namespace mcan::core
