// Targeted tests of individual ISO 11898-1 rules the experiments depend on
// but which only trigger in narrow windows: the arbitration stuff-bit TEC
// exception, REC dynamics of receivers, and delimiter penalties.
#include <gtest/gtest.h>

#include "can/bitstream.hpp"
#include "can/bus.hpp"
#include "can/controller.hpp"
#include "helpers.hpp"

namespace mcan::can {
namespace {

using sim::BitLevel;
using sim::BitTime;
using sim::EventKind;
using test::PulseInjector;
using test::ScriptedNode;

TEST(ProtocolRules, StuffErrorInArbitrationDoesNotChangeTec) {
  // ISO exception: a transmitter whose *recessive stuff bit inside the
  // arbitration field* is monitored dominant raises a stuff error but does
  // NOT increment its TEC (the situation is equivalent to losing
  // arbitration).  ID 0x07F = 00001111111b: SOF + four dominant ID bits
  // give a run of five, so a recessive stuff bit follows at raw position 5.
  WiredAndBus bus;
  BitController tx{"tx"};
  BitController rx{"rx"};
  PulseInjector pulse;
  tx.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(pulse);

  tx.enqueue(CanFrame::make(0x07F, {0x55}));
  // SOF lands at bit 12 (11 integration bits + 1 decision bit); the stuff
  // bit after SOF + 4 dominant ID bits is raw offset 5.
  pulse.pulse(12 + 5, 1);
  bus.run(400);

  const auto errs = bus.log().filter(EventKind::TxError, "tx");
  ASSERT_GE(errs.size(), 1u);
  EXPECT_EQ(static_cast<ErrorType>(errs[0].a), ErrorType::Stuff);
  // TEC unchanged by the exempted error; the successful retransmission
  // then leaves it at 0.
  EXPECT_EQ(tx.tec(), 0);
  EXPECT_EQ(tx.stats().frames_sent, 1u);
}

TEST(ProtocolRules, StuffErrorPastArbitrationDoesChangeTec) {
  // Contrast case: the same forced-stuff-bit situation inside the DATA
  // field is a plain bit/stuff error with TEC += 8.  Payload 0x00,0x0F:
  // data bits 0000 0000 0000 1111 -> a recessive stuff bit follows the
  // fifth dominant data bit.
  WiredAndBus bus;
  BitController tx{"tx"};
  BitController rx{"rx"};
  PulseInjector pulse;
  tx.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(pulse);

  const auto frame = CanFrame::make(0x2AA, {0x00, 0x0F});
  // Find the raw index of the first stuff bit inside the data field.
  const auto wire = wire_bits(frame);
  std::size_t stuff_raw = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    if (wire[i].is_stuff && wire[i].field == Field::Data) {
      stuff_raw = i;
      break;
    }
  }
  ASSERT_GT(stuff_raw, 0u);
  tx.enqueue(frame);
  pulse.pulse(12 + stuff_raw, 1);
  bus.run(400);

  const auto errs = bus.log().filter(EventKind::TxError, "tx");
  ASSERT_GE(errs.size(), 1u);
  // +8 for the error, -1 for the successful retransmission.
  EXPECT_EQ(tx.tec(), 7);
}

TEST(ProtocolRules, ReceiverRecIncrementsByOnePerError) {
  WiredAndBus bus;
  BitController tx{"tx"};
  BitController rx{"rx"};
  test::FrameKiller killer{13, 20, 3};
  tx.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(killer);
  tx.enqueue(CanFrame::make(0x123, {0x42}));
  bus.run(700);
  // Three destroyed attempts: REC went +1 each, then -1 for the eventual
  // successful reception.
  EXPECT_EQ(rx.rec(), 2);
  EXPECT_EQ(rx.stats().rx_errors, 3u);
}

TEST(ProtocolRules, RecDecaysWithSuccessfulReceptions) {
  WiredAndBus bus;
  BitController tx{"tx"};
  BitController rx{"rx"};
  tx.attach_to(bus);
  rx.attach_to(bus);
  rx.force_error_counters(0, 10);
  for (int i = 0; i < 10; ++i) tx.enqueue(CanFrame::make(0x100, {0x01}));
  bus.run(2000);
  EXPECT_EQ(rx.rec(), 0);
}

TEST(ProtocolRules, ArbitrationLossOnVeryLastIdBit) {
  // IDs differing only in the LSB: the loser must flip to receiver at the
  // eleventh ID bit and still receive the winner's frame intact.
  WiredAndBus bus;
  BitController a{"a"};
  BitController b{"b"};
  a.attach_to(bus);
  b.attach_to(bus);
  std::vector<CanFrame> a_rx;
  a.set_rx_callback([&](const CanFrame& f, BitTime) { a_rx.push_back(f); });
  a.enqueue(CanFrame::make(0x101, {0x0A}));
  b.enqueue(CanFrame::make(0x100, {0x0B}));
  bus.run(500);

  const auto losses = bus.log().filter(EventKind::ArbitrationLost, "a");
  ASSERT_EQ(losses.size(), 1u);
  EXPECT_EQ(losses[0].a, kPosIdLast);  // lost at the last ID bit
  ASSERT_GE(a_rx.size(), 1u);
  EXPECT_EQ(a_rx[0], CanFrame::make(0x100, {0x0B}));
  // The loser retries and delivers afterwards.
  EXPECT_EQ(a.stats().frames_sent, 1u);
}

TEST(ProtocolRules, ArbitrationLossOnRtrBit) {
  // Data frame (RTR dominant) beats remote frame (RTR recessive) of the
  // SAME identifier; the loss happens exactly at the RTR bit.
  WiredAndBus bus;
  BitController data_node{"data"};
  BitController remote_node{"remote"};
  data_node.attach_to(bus);
  remote_node.attach_to(bus);
  data_node.enqueue(CanFrame::make(0x155, {0x77}));
  remote_node.enqueue(CanFrame::make_remote(0x155));
  bus.run(500);

  const auto losses = bus.log().filter(EventKind::ArbitrationLost, "remote");
  ASSERT_EQ(losses.size(), 1u);
  EXPECT_EQ(losses[0].a, kPosRtr);
  EXPECT_EQ(remote_node.tec(), 0);
  EXPECT_EQ(data_node.stats().frames_sent, 1u);
}

TEST(ProtocolRules, ErrorPassiveReceiverFlagsAreInvisible) {
  // An error-passive node detecting an RX error sends a passive (recessive)
  // flag: the transmitter of an unrelated next frame must not even notice.
  WiredAndBus bus;
  BitController tx{"tx"};
  BitController passive{"passive"};
  BitController rx{"rx"};
  test::FrameKiller killer{13, 20, 1};
  tx.attach_to(bus);
  passive.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(killer);
  passive.force_error_counters(0, 130);  // error-passive receiver

  tx.enqueue(CanFrame::make(0x123, {0x42}));
  bus.run(500);
  // The killed first attempt made `passive` detect an error; its flag is
  // recessive and the retransmission succeeds on schedule.
  EXPECT_EQ(tx.stats().frames_sent, 1u);
  EXPECT_EQ(static_cast<int>(tx.stats().tx_errors), 1);
}

TEST(ProtocolRules, TecLoggedBeforeIncrementMatchesPaperCounting) {
  // The paper counts "after the active error flag is sent for the 16th
  // time, the node goes error-passive" — i.e. the 16th error is flagged
  // while still error-active.  Verify the boundary explicitly.
  WiredAndBus bus;
  BitController::Config cfg;
  cfg.auto_recover = false;
  BitController tx{"tx", cfg};
  BitController rx{"rx"};
  test::FrameKiller killer;
  tx.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(killer);
  tx.enqueue(CanFrame::make(0x100, {}));
  bus.run(3000);

  const auto changes = bus.log().filter(EventKind::ErrorStateChange, "tx");
  ASSERT_GE(changes.size(), 2u);
  // Passive after exactly 16 errors, bus-off after exactly 32.
  const auto errs = bus.log().filter(EventKind::TxError, "tx");
  const auto* passive_change = &changes[0];
  std::size_t errors_before_passive = 0;
  for (const auto& e : errs) {
    if (e.at <= passive_change->at) ++errors_before_passive;
  }
  EXPECT_EQ(errors_before_passive, 16u);
}

TEST(ProtocolRules, FormErrorInsideErrorDelimiter) {
  // A dominant glitch while a node waits out its error delimiter is a form
  // error and restarts the error signalling.
  WiredAndBus bus;
  BitController tx{"tx"};
  BitController rx{"rx"};
  PulseInjector pulse;
  test::FrameKiller killer{13, 20, 1};
  tx.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(pulse);
  bus.attach(killer);

  tx.enqueue(CanFrame::make(0x123, {0x42}));
  // The kill triggers an error around bit 12+16; the delimiter spans about
  // bits +24..+32; strike into it.
  pulse.pulse(12 + 29, 1);
  bus.run(600);

  // More than one TX error: the original + the delimiter form error.
  EXPECT_GE(tx.stats().tx_errors, 2u);
  EXPECT_EQ(tx.stats().frames_sent, 1u);  // still delivered eventually
}

}  // namespace
}  // namespace mcan::can
