// Tests for the fuzz campaign runner: determinism across worker counts,
// round-robin stream assignment, report invariants and config validation.
#include "runner/fuzz.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace mcan::runner {
namespace {

FuzzConfig small_config() {
  FuzzConfig cfg;
  cfg.cases = 48;
  cfg.seeds = {0, 4};
  cfg.jobs = 1;
  return cfg;
}

TEST(Fuzz, ReportIsByteIdenticalAcrossJobCounts) {
  auto cfg = small_config();
  const auto r1 = run_fuzz(cfg);
  cfg.jobs = 8;
  const auto r8 = run_fuzz(cfg);
  // Default JsonOptions exclude the runtime section, so the deterministic
  // report must match byte for byte regardless of parallelism.
  EXPECT_EQ(to_json(r1), to_json(r8));
  EXPECT_EQ(format_summary(r1), format_summary(r8));
}

TEST(Fuzz, DefaultPopulationHasNoDivergences) {
  auto cfg = small_config();
  cfg.cases = 120;
  cfg.jobs = 0;  // hardware concurrency
  const auto report = run_fuzz(cfg);
  for (const auto& d : report.divergences) {
    ADD_FAILURE() << "case " << d.index << " seed " << d.derived_seed << ": "
                  << report.cells[d.index].divergence;
  }
  EXPECT_GT(report.oracle_checked, 0u);
  EXPECT_GT(report.wire_bits_compared, 0u);
  EXPECT_GT(report.stuff_bits_checked, 0u);
}

TEST(Fuzz, CasesAreAssignedRoundRobinOverSeedStreams) {
  auto cfg = small_config();
  cfg.cases = 10;
  cfg.seeds = {3, 6};
  const auto report = run_fuzz(cfg);
  ASSERT_EQ(report.cells.size(), 10u);
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    EXPECT_EQ(report.cells[i].index, i);
    EXPECT_EQ(report.cells[i].stream, 3 + i % 3);
    EXPECT_NE(report.cells[i].derived_seed, 0u);
  }
  // Same (base_seed, stream, offset) -> same derived seed; different offset
  // -> different case.  Cells 0 and 3 share stream 3 but not the seed.
  EXPECT_EQ(report.cells[0].stream, report.cells[3].stream);
  EXPECT_NE(report.cells[0].derived_seed, report.cells[3].derived_seed);
}

TEST(Fuzz, KindCountsSumToCases) {
  const auto report = run_fuzz(small_config());
  EXPECT_EQ(report.kind_counts[0] + report.kind_counts[1] +
                report.kind_counts[2] + report.kind_counts[3],
            report.cases);
  EXPECT_EQ(report.cells.size(), report.cases);
}

TEST(Fuzz, BatchedPopulationIsGeneratedAndOracleChecked) {
  auto cfg = small_config();
  cfg.cases = 120;
  cfg.jobs = 0;
  const auto report = run_fuzz(cfg);
  // ~15% of cases target the word-level batch engine; they run the full
  // Clean-tier oracle and the three-way engine identity comparison.
  EXPECT_GT(report.kind_counts[3], 0u);
  const auto json = to_json(report);
  EXPECT_NE(json.find("\"batched\":"), std::string::npos);
  for (const auto& d : report.divergences) {
    ADD_FAILURE() << "case " << d.index << " seed " << d.derived_seed << ": "
                  << report.cells[d.index].divergence;
  }
}

TEST(Fuzz, ProgressCallbackIsSerializedAndComplete) {
  auto cfg = small_config();
  cfg.cases = 16;
  cfg.jobs = 4;
  std::vector<std::size_t> done;
  cfg.progress = [&](std::size_t d, std::size_t total) {
    EXPECT_EQ(total, 16u);
    done.push_back(d);
  };
  (void)run_fuzz(cfg);
  ASSERT_EQ(done.size(), 16u);
  for (std::size_t i = 0; i < done.size(); ++i) EXPECT_EQ(done[i], i + 1);
}

TEST(Fuzz, InvalidConfigThrows) {
  auto cfg = small_config();
  cfg.cases = 0;
  EXPECT_THROW((void)run_fuzz(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.seeds = {5, 5};
  EXPECT_THROW((void)run_fuzz(cfg), std::invalid_argument);
}

TEST(Fuzz, JsonReportCarriesSchemaAndCheckTotals) {
  const auto report = run_fuzz(small_config());
  const auto json = to_json(report);
  EXPECT_NE(json.find("\"schema\":\"michican.fuzz.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"checks\":"), std::string::npos);
  EXPECT_EQ(json.find("\"runtime\""), std::string::npos);
  JsonOptions with_runtime;
  with_runtime.include_runtime = true;
  EXPECT_NE(to_json(report, with_runtime).find("\"runtime\""),
            std::string::npos);
}

}  // namespace
}  // namespace mcan::runner
