// CAN 2.0B extended (29-bit ID) support: wire format, mixed-format
// arbitration, and the extended-space MichiCAN defense (an extension
// beyond the paper's CAN 2.0A scope; see DESIGN.md).
#include <gtest/gtest.h>

#include "attack/attacker.hpp"
#include "can/bitstream.hpp"
#include "can/bus.hpp"
#include "can/controller.hpp"
#include "core/michican_node.hpp"
#include "sim/rng.hpp"

namespace mcan {
namespace {

using attack::Attacker;
using sim::BitTime;

can::CanFrame random_ext_frame(sim::Rng& rng) {
  can::CanFrame f;
  f.id = static_cast<can::CanId>(rng.uniform(0, can::kMaxExtId));
  f.extended = true;
  f.dlc = static_cast<std::uint8_t>(rng.uniform(0, 8));
  for (int i = 0; i < f.dlc; ++i) {
    f.data[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(rng.uniform(0, 255));
  }
  return f;
}

TEST(ExtendedFrames, WireLayoutLengths) {
  // Extended dlc-2 frame: 39 head bits + 16 data + 15 CRC = 70 stuffed
  // region; + 10 trailer = 80 total.
  EXPECT_EQ(can::stuffed_region_length(2, false, true), 70);
  EXPECT_EQ(can::unstuffed_frame_length(2, false, true), 80);
  // Field map landmarks.
  EXPECT_EQ(can::field_at(12, 2, false, true), can::Field::Srr);
  EXPECT_EQ(can::field_at(13, 2, false, true), can::Field::Ide);
  EXPECT_EQ(can::field_at(14, 2, false, true), can::Field::ExtId);
  EXPECT_EQ(can::field_at(31, 2, false, true), can::Field::ExtId);
  EXPECT_EQ(can::field_at(32, 2, false, true), can::Field::Rtr);
  EXPECT_EQ(can::field_at(33, 2, false, true), can::Field::R1);
  EXPECT_EQ(can::field_at(34, 2, false, true), can::Field::R0);
  EXPECT_EQ(can::field_at(35, 2, false, true), can::Field::Dlc);
  EXPECT_EQ(can::field_at(39, 2, false, true), can::Field::Data);
}

TEST(ExtendedFrames, SrrAndIdeAreRecessive) {
  const auto bits = can::unstuffed_bits(can::CanFrame::make_ext(0x0, {}));
  EXPECT_EQ(bits[can::kPosSrr], 1);
  EXPECT_EQ(bits[can::kPosIde], 1);
  EXPECT_EQ(bits[can::kPosR1], 0);
  EXPECT_EQ(bits[can::kPosR0Ext], 0);
}

TEST(ExtendedFrames, RoundTripThroughRealBus) {
  sim::Rng rng{4242};
  can::WiredAndBus bus;
  can::BitController tx{"tx"};
  can::BitController rx{"rx"};
  tx.attach_to(bus);
  rx.attach_to(bus);
  std::vector<can::CanFrame> got;
  rx.set_rx_callback(
      [&](const can::CanFrame& f, BitTime) { got.push_back(f); });

  std::vector<can::CanFrame> sent;
  for (int i = 0; i < 40; ++i) {
    const auto f = random_ext_frame(rng);
    sent.push_back(f);
    tx.enqueue(f);
  }
  bus.run(40 * 260);
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i], sent[i]) << "frame " << i;
    EXPECT_TRUE(got[i].extended);
  }
}

TEST(ExtendedFrames, MixedTrafficRoundTrips) {
  can::WiredAndBus bus;
  can::BitController tx{"tx"};
  can::BitController rx{"rx"};
  tx.attach_to(bus);
  rx.attach_to(bus);
  std::vector<can::CanFrame> got;
  rx.set_rx_callback(
      [&](const can::CanFrame& f, BitTime) { got.push_back(f); });
  const auto std_frame = can::CanFrame::make(0x123, {0x01});
  const auto ext_frame = can::CanFrame::make_ext(0x123 << 18 | 0xBEEF, {0x02});
  tx.enqueue(std_frame);
  tx.enqueue(ext_frame);
  tx.enqueue(std_frame);
  bus.run(800);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_FALSE(got[0].extended);
  EXPECT_TRUE(got[1].extended);
  EXPECT_EQ(got[1], ext_frame);
  EXPECT_FALSE(got[2].extended);
}

TEST(ExtendedFrames, StandardBeatsExtendedWithSameBaseId) {
  // ISO 11898-1: a standard frame wins against an extended frame carrying
  // the same 11 base bits — the standard RTR (dominant) beats SRR
  // (recessive) at position 12.
  can::WiredAndBus bus;
  can::BitController a{"std"};
  can::BitController b{"ext"};
  can::BitController obs{"obs"};
  a.attach_to(bus);
  b.attach_to(bus);
  obs.attach_to(bus);
  std::vector<bool> order_ext;
  obs.set_rx_callback([&](const can::CanFrame& f, BitTime) {
    order_ext.push_back(f.extended);
  });
  a.enqueue(can::CanFrame::make(0x155, {0x01}));
  b.enqueue(can::CanFrame::make_ext(0x155u << 18, {0x02}));
  bus.run(700);
  ASSERT_EQ(order_ext.size(), 2u);
  EXPECT_FALSE(order_ext[0]);  // the standard frame went first
  EXPECT_TRUE(order_ext[1]);
  EXPECT_EQ(b.stats().arbitration_losses, 1u);
  EXPECT_EQ(b.tec(), 0);  // loss, not error
}

TEST(ExtendedFrames, LowerExtendedBaseBeatsHigherStandardId) {
  // The attack surface motivating extended-space detection: an extended
  // frame with base 0x000 outranks every standard frame except 0x000.
  can::WiredAndBus bus;
  can::BitController a{"std"};
  can::BitController b{"ext"};
  a.attach_to(bus);
  b.attach_to(bus);
  std::vector<bool> order_ext;
  a.set_rx_callback([&](const can::CanFrame& f, BitTime) {
    order_ext.push_back(f.extended);
  });
  a.enqueue(can::CanFrame::make(0x173, {0x01}));
  b.enqueue(can::CanFrame::make_ext(0x00000123, {0x02}));
  bus.run(700);
  ASSERT_GE(order_ext.size(), 1u);
  EXPECT_TRUE(order_ext[0]);  // the extended frame won
  EXPECT_EQ(a.stats().arbitration_losses, 1u);
}

TEST(ExtendedFrames, ExtDetectionRangesExcludeLegitimateExtIds) {
  core::IvnConfig ivn{{0x100, 0x173}};
  ivn.set_extended_ecus({0x00ABCDEF, 0x18DAF110});
  const auto d = ivn.ext_detection_ranges(0x173);
  EXPECT_TRUE(d.contains(0x00000000));
  EXPECT_FALSE(d.contains(0x00ABCDEF));  // legitimate extended ID
  EXPECT_TRUE(d.contains(0x00ABCDF0));
  // 0x18DAF110 has base 0x635 > 0x173: outside our blocking range anyway.
  EXPECT_FALSE(d.contains(0x18DAF110));
  // Boundary: base 0x172 blocks us, base 0x173 does not (we win ties).
  EXPECT_TRUE(d.contains((0x172u << 18) | 0x3FFFF));
  EXPECT_FALSE(d.contains(0x173u << 18));
}

TEST(ExtendedFrames, ExtendedDosAttackerBusedOff) {
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  core::IvnConfig ivn{{0x100, 0x173, 0x300}};
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);

  auto acfg = Attacker::targeted_dos(0x00000042);  // base 0x000: beats all
  acfg.extended = true;
  acfg.persistent = false;
  Attacker atk{"attacker", acfg};
  atk.attach_to(bus);

  bus.run(8000);
  EXPECT_TRUE(atk.node().is_bus_off());
  EXPECT_EQ(def.controller().tec(), 0);
  EXPECT_GE(def.monitor().stats().counterattacks, 32u);
  EXPECT_EQ(atk.node().stats().frames_sent, 0u);
}

TEST(ExtendedFrames, LegitimateExtendedTrafficUntouched) {
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  core::IvnConfig ivn{{0x100, 0x173, 0x300}};
  ivn.set_extended_ecus({0x00012345});
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);

  can::BitController peer{"peer"};
  peer.attach_to(bus);
  for (int i = 0; i < 10; ++i) {
    peer.enqueue(can::CanFrame::make_ext(0x00012345, {0xAA}));
  }
  bus.run(8000);
  EXPECT_EQ(peer.stats().frames_sent, 10u);
  EXPECT_EQ(peer.tec(), 0);
  EXPECT_EQ(def.monitor().stats().counterattacks, 0u);
}

TEST(ExtendedFrames, PaperModeJamsButCannotBusOffExtendedDos) {
  // Paper-faithful CAN 2.0A mode (guard_extended = false): Algorithm 1
  // arms off the malicious-looking *base* bits at the RTR position and
  // starts forcing dominant at position 13 — which, on an extended frame,
  // is the recessive IDE bit.  The attacker therefore sees an ARBITRATION
  // LOSS (not an error): its frames never complete, but its TEC never
  // moves and it is never bused off — a permanent error-frame jam.  This
  // measured limitation of the paper's CAN 2.0A scope is exactly what the
  // extended guard (previous test) eliminates.
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  core::IvnConfig ivn{{0x100, 0x173, 0x300}};
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  cfg.guard_extended = false;
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);
  auto acfg = Attacker::targeted_dos(0x00000042);  // base 0x000
  acfg.extended = true;
  Attacker atk{"attacker", acfg};
  atk.attach_to(bus);
  bus.run(8000);
  EXPECT_FALSE(atk.node().is_bus_off());
  EXPECT_EQ(atk.node().tec(), 0);                   // losses, not errors
  EXPECT_EQ(atk.node().stats().frames_sent, 0u);    // nothing completes
  EXPECT_GT(atk.node().stats().arbitration_losses, 50u);
  EXPECT_GT(def.monitor().stats().counterattacks, 50u);
}

TEST(ExtendedFrames, StandardDefenseUnaffectedByExtGuard) {
  // The one-bit-later arm position (IDE instead of RTR) still buses off
  // standard attackers within the usual budget.
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  core::IvnConfig ivn{{0x100, 0x173, 0x300}};
  core::MichiCanNodeConfig cfg;
  cfg.own_id = 0x173;
  ASSERT_TRUE(cfg.guard_extended);
  core::MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);
  auto acfg = Attacker::targeted_dos(0x064);
  acfg.persistent = false;
  acfg.dlc = 1;  // worst case
  Attacker atk{"attacker", acfg};
  atk.attach_to(bus);
  bus.run(6000);
  EXPECT_TRUE(atk.node().is_bus_off());
  EXPECT_EQ(def.controller().tec(), 0);
}

TEST(ExtendedFrames, ExtendedRangeSetHandles29BitBoundaries) {
  core::IdRangeSet s;
  s.add(0, can::kMaxExtId);
  EXPECT_TRUE(s.contains(can::kMaxExtId));
  EXPECT_EQ(s.id_count(), static_cast<std::size_t>(can::kMaxExtId) + 1);
  const auto fsm = core::DetectionFsm::build(s, can::kExtIdBits);
  EXPECT_TRUE(fsm.decide(0x1ABCDEF0).malicious);
  EXPECT_EQ(fsm.decide(0).bit_position, 0);
}

TEST(ExtendedFrames, Ext29BitFsmMatchesBruteForceOnSample) {
  sim::Rng rng{77};
  core::IdRangeSet d;
  for (int i = 0; i < 12; ++i) {
    const auto lo = static_cast<can::CanId>(rng.uniform(0, can::kMaxExtId));
    const auto hi = static_cast<can::CanId>(
        std::min<std::uint64_t>(lo + rng.uniform(0, 1 << 20),
                                can::kMaxExtId));
    d.add(lo, hi);
  }
  const auto fsm = core::DetectionFsm::build(d, can::kExtIdBits);
  for (int probe = 0; probe < 20'000; ++probe) {
    const auto id = static_cast<can::CanId>(rng.uniform(0, can::kMaxExtId));
    ASSERT_EQ(fsm.decide(id).malicious, d.contains(id)) << "id=" << id;
  }
}

}  // namespace
}  // namespace mcan
