// Error-path tests: bit/stuff/ack/crc/form errors, error flags, fault
// confinement dynamics, suspend transmission, bus-off and recovery.
//
// These paths are exactly what MichiCAN's prevention routine exploits
// (paper Secs. II-B and IV-E), so they are tested exhaustively here.
#include <gtest/gtest.h>

#include "can/bitstream.hpp"
#include "can/bus.hpp"
#include "can/controller.hpp"
#include "helpers.hpp"

namespace mcan::can {
namespace {

using sim::BitLevel;
using sim::BitTime;
using sim::EventKind;
using test::FrameKiller;
using test::PulseInjector;
using test::ScriptedNode;

TEST(ErrorHandling, ForcedDominantRunDestroysFrameAndBumpsTec) {
  WiredAndBus bus;
  BitController tx{"tx"};
  BitController rx{"rx"};
  FrameKiller killer{13, 20, /*max_kills=*/1};
  tx.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(killer);

  int delivered = 0;
  rx.set_rx_callback([&](const CanFrame&, BitTime) { ++delivered; });

  tx.enqueue(CanFrame::make(0x173, {0x11, 0x22, 0x33, 0x44}));
  bus.run(400);

  EXPECT_EQ(killer.kills(), 1);
  EXPECT_EQ(delivered, 1);                    // retransmission got through
  EXPECT_GE(tx.stats().tx_errors, 1u);
  EXPECT_EQ(tx.stats().frames_sent, 1u);
  // TEC: +8 for the destroyed attempt, -1 for the successful retransmission.
  EXPECT_EQ(tx.tec(), 7);
  // The receiver observed the mangled frame: stuff error, REC +1 then -1.
  EXPECT_GE(rx.stats().rx_errors, 1u);
}

TEST(ErrorHandling, TransmitterRaisesActiveErrorFlag) {
  WiredAndBus bus;
  BitController tx{"tx"};
  BitController rx{"rx"};
  FrameKiller killer{13, 20, 1};
  tx.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(killer);
  tx.enqueue(CanFrame::make(0x155, {0xFF}));
  bus.run(400);

  // The error flag must appear in the trace as >= 6 consecutive dominant
  // bits right after the forced window.
  const auto sof = bus.trace().next_falling_edge(0);
  ASSERT_TRUE(sof.has_value());
  // From the forced window start (bit 13) there must be a dominant run of
  // at least 6 bits (the killer window overlaps the flag).
  std::size_t run = 0, best = 0;
  for (BitTime t = *sof; t < *sof + 40 && t < bus.trace().size(); ++t) {
    if (bus.trace().at(t) == BitLevel::Dominant) {
      best = std::max(best, ++run);
    } else {
      run = 0;
    }
  }
  EXPECT_GE(best, 6u);
}

TEST(ErrorHandling, SixteenKillsReachErrorPassiveThirtyTwoReachBusOff) {
  WiredAndBus bus;
  BitController::Config cfg;
  cfg.auto_recover = false;
  BitController tx{"victim", cfg};
  BitController rx{"rx"};
  FrameKiller killer;
  tx.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(killer);

  tx.enqueue(CanFrame::make(0x173, {0xAB, 0xCD}));
  bus.run(3000);

  EXPECT_TRUE(tx.is_bus_off());
  EXPECT_EQ(tx.stats().tx_errors, 32u);
  EXPECT_EQ(tx.stats().frames_sent, 0u);

  // Check the paper's trajectory: error-passive after the 16th error.
  const auto changes = bus.log().filter(EventKind::ErrorStateChange, "victim");
  ASSERT_GE(changes.size(), 1u);
  EXPECT_EQ(static_cast<ErrorState>(changes[0].a), ErrorState::ErrorPassive);
  const auto errors = bus.log().filter(EventKind::TxError, "victim");
  ASSERT_EQ(errors.size(), 32u);
  // TEC logged *before* increment: 16th error sees TEC 120.
  EXPECT_EQ(errors[15].b, 120);
  EXPECT_EQ(errors[31].b, 248);
}

TEST(ErrorHandling, SuspendTransmissionAfterErrorPassive) {
  WiredAndBus bus;
  BitController::Config cfg;
  cfg.auto_recover = false;
  BitController tx{"victim", cfg};
  BitController rx{"rx"};
  FrameKiller killer;
  tx.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(killer);
  tx.enqueue(CanFrame::make(0x100, {0x00}));
  bus.run(3000);

  // 16 error-passive retransmissions -> 16 suspend windows.
  EXPECT_EQ(bus.log().count(EventKind::SuspendStart, "victim"), 16u);
}

TEST(ErrorHandling, ErrorActiveRetransmissionSpacing) {
  // Error-active: flag(6) + delimiter(8) + IFS(3) = 17 bits between the
  // error bit and the retransmission SOF.
  WiredAndBus bus;
  BitController::Config cfg;
  cfg.auto_recover = false;
  BitController tx{"victim", cfg};
  BitController rx{"rx"};
  FrameKiller killer;
  tx.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(killer);
  tx.enqueue(CanFrame::make(0x7F0, {0x55}));  // recessive-heavy ID
  bus.run(3000);

  const auto starts = bus.log().filter(EventKind::FrameTxStart, "victim");
  ASSERT_GE(starts.size(), 3u);
  // Successive error-active attempts are equally spaced.
  const auto d1 = starts[1].at - starts[0].at;
  const auto d2 = starts[2].at - starts[1].at;
  EXPECT_EQ(d1, d2);
  // Spacing = error position + 17 + 1(SOF alignment); just bound it.
  EXPECT_GE(d1, 30u);
  EXPECT_LE(d1, 45u);
}

TEST(ErrorHandling, ErrorPassiveRetransmissionIsEightBitsLater) {
  WiredAndBus bus;
  BitController::Config cfg;
  cfg.auto_recover = false;
  BitController tx{"victim", cfg};
  BitController rx{"rx"};
  FrameKiller killer;
  tx.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(killer);
  tx.enqueue(CanFrame::make(0x7F0, {0x55}));
  bus.run(3000);

  const auto starts = bus.log().filter(EventKind::FrameTxStart, "victim");
  ASSERT_EQ(starts.size(), 32u);
  const auto active_gap = starts[2].at - starts[1].at;
  const auto passive_gap = starts[20].at - starts[19].at;
  // Paper Sec. II-B: passive retransmissions wait 8 additional bits
  // (suspend transmission).
  EXPECT_EQ(passive_gap - active_gap, 8u);
}

TEST(ErrorHandling, BusOffRecoveryAfter128Times11RecessiveBits) {
  WiredAndBus bus;
  BitController tx{"victim"};  // auto_recover = true
  BitController rx{"rx"};
  FrameKiller killer{13, 20, /*max_kills=*/32};
  tx.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(killer);

  int delivered = 0;
  rx.set_rx_callback([&](const CanFrame&, BitTime) { ++delivered; });

  tx.enqueue(CanFrame::make(0x300, {0x99}));
  bus.run(10'000);

  // Victim went bus-off, then recovered and delivered the queued frame.
  EXPECT_EQ(bus.log().count(EventKind::BusOff, "victim"), 1u);
  EXPECT_EQ(bus.log().count(EventKind::BusOffRecovered, "victim"), 1u);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(tx.tec(), 0);  // counters reset on recovery

  const auto* off = bus.log().first(EventKind::BusOff);
  const auto* rec = bus.log().first(EventKind::BusOffRecovered);
  ASSERT_NE(off, nullptr);
  ASSERT_NE(rec, nullptr);
  // Recovery requires 128 sequences of 11 recessive bits = 1408 bits.
  EXPECT_GE(rec->at - off->at, 1408u);
  EXPECT_LE(rec->at - off->at, 1408u + 16u);
}

TEST(ErrorHandling, CrcErrorAtReceiverNoAckAndNoDelivery) {
  // Hand-corrupt one CRC bit of a frame and replay the raw bits: compliant
  // receivers must detect a CRC error, not ACK, and not deliver the frame.
  const auto frame = CanFrame::make(0x222, {0x12, 0x34});
  auto wire = wire_bits(frame);
  // Flip the level of a recessive CRC bit to dominant (we can only force
  // dominant on the wire).  Find a recessive CRC bit that does not create
  // six-in-a-row dominant.
  bool flipped = false;
  for (std::size_t i = 2; i + 2 < wire.size() && !flipped; ++i) {
    if (wire[i].field == Field::Crc && !wire[i].is_stuff &&
        wire[i].level == BitLevel::Recessive &&
        wire[i - 1].level == BitLevel::Recessive &&
        wire[i + 1].level == BitLevel::Recessive) {
      wire[i].level = BitLevel::Dominant;
      flipped = true;
    }
  }
  ASSERT_TRUE(flipped);

  std::vector<BitLevel> script;
  script.reserve(wire.size());
  for (const auto& b : wire) script.push_back(b.level);

  WiredAndBus bus;
  ScriptedNode sender{20, std::move(script)};
  BitController rx{"rx"};
  bus.attach(sender);
  rx.attach_to(bus);
  int delivered = 0;
  rx.set_rx_callback([&](const CanFrame&, BitTime) { ++delivered; });

  bus.run(300);
  EXPECT_EQ(delivered, 0);
  EXPECT_GE(rx.stats().rx_errors, 1u);
  const auto errs = bus.log().filter(EventKind::RxError, "rx");
  ASSERT_GE(errs.size(), 1u);
  EXPECT_EQ(static_cast<ErrorType>(errs[0].a), ErrorType::Crc);
}

TEST(ErrorHandling, StuffErrorRaisedOnSixDominantBits) {
  // A scripted node drives SOF + 10 dominant bits: every receiver must
  // flag a stuff error after the 6th.
  WiredAndBus bus;
  ScriptedNode sender{20, std::vector<BitLevel>(11, BitLevel::Dominant)};
  BitController rx{"rx"};
  bus.attach(sender);
  rx.attach_to(bus);
  bus.run(100);

  const auto errs = bus.log().filter(EventKind::RxError, "rx");
  ASSERT_GE(errs.size(), 1u);
  EXPECT_EQ(static_cast<ErrorType>(errs[0].a), ErrorType::Stuff);
  EXPECT_EQ(errs[0].at, 25u);  // SOF at 20, 6th bit at 25
}

TEST(ErrorHandling, FormErrorOnDominantCrcDelimiter) {
  const auto frame = CanFrame::make(0x0AB, {0x77});
  auto wire = wire_bits(frame);
  for (auto& b : wire) {
    if (b.field == Field::CrcDelim) b.level = BitLevel::Dominant;
  }
  std::vector<BitLevel> script;
  for (const auto& b : wire) script.push_back(b.level);

  WiredAndBus bus;
  ScriptedNode sender{15, std::move(script)};
  BitController rx{"rx"};
  bus.attach(sender);
  rx.attach_to(bus);
  bus.run(200);

  const auto errs = bus.log().filter(EventKind::RxError, "rx");
  ASSERT_GE(errs.size(), 1u);
  EXPECT_EQ(static_cast<ErrorType>(errs[0].a), ErrorType::Form);
}

TEST(ErrorHandling, PassiveErrorFlagDoesNotDestroyOtherTraffic) {
  // An error-passive receiver raising a (recessive) passive flag must not
  // interfere with an ongoing third-party transmission.
  WiredAndBus bus;
  BitController tx{"tx"};
  BitController passive_rx{"passive"};
  BitController rx{"rx"};
  tx.attach_to(bus);
  passive_rx.attach_to(bus);
  rx.attach_to(bus);
  passive_rx.force_error_counters(0, 200);  // REC > 127: error-passive

  int delivered = 0;
  rx.set_rx_callback([&](const CanFrame&, BitTime) { ++delivered; });
  tx.enqueue(CanFrame::make(0x111, {0x01, 0x02}));
  bus.run(300);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(tx.tec(), 0);
}

TEST(ErrorHandling, OneShotModeDropsFrameAfterError) {
  WiredAndBus bus;
  BitController::Config cfg;
  cfg.auto_retransmit = false;
  BitController tx{"oneshot", cfg};
  BitController rx{"rx"};
  FrameKiller killer{13, 20, 1};
  tx.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(killer);

  int delivered = 0;
  rx.set_rx_callback([&](const CanFrame&, BitTime) { ++delivered; });
  tx.enqueue(CanFrame::make(0x123, {0x42}));
  bus.run(500);
  EXPECT_EQ(delivered, 0);  // destroyed and never retried
  EXPECT_EQ(tx.queue_depth(), 0u);
}

TEST(ErrorHandling, ClearQueueOnBusOff) {
  WiredAndBus bus;
  BitController::Config cfg;
  cfg.clear_queue_on_bus_off = true;
  BitController tx{"victim", cfg};
  BitController rx{"rx"};
  FrameKiller killer;
  tx.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(killer);
  tx.enqueue(CanFrame::make(0x100, {}));
  tx.enqueue(CanFrame::make(0x101, {}));
  bus.run(3000);
  EXPECT_TRUE(tx.is_bus_off() || tx.queue_depth() == 0u);
  EXPECT_EQ(tx.queue_depth(), 0u);
}

TEST(ErrorHandling, VictimTecResetsOnlyAfterRecovery) {
  WiredAndBus bus;
  BitController tx{"victim"};
  BitController rx{"rx"};
  FrameKiller killer{13, 20, 32};
  tx.attach_to(bus);
  rx.attach_to(bus);
  bus.attach(killer);
  tx.enqueue(CanFrame::make(0x100, {}));

  // Run until bus-off.
  while (!tx.is_bus_off() && bus.now() < 5000) bus.step();
  ASSERT_TRUE(tx.is_bus_off());
  EXPECT_GE(tx.tec(), 256);
  // Counters stay until the 128*11 recessive recovery completes.
  bus.run(100);
  EXPECT_GE(tx.tec(), 256);
  bus.run(2000);
  EXPECT_EQ(tx.tec(), 0);
}

}  // namespace
}  // namespace mcan::can
