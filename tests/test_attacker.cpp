// Unit tests for the attack strategies (threat model of Sec. III).
#include "attack/attacker.hpp"

#include <gtest/gtest.h>

#include "can/bus.hpp"
#include "can/periodic.hpp"
#include "helpers.hpp"

namespace mcan::attack {
namespace {

using sim::BitTime;

TEST(Attacker, ContinuousFloodKeepsBusBusy) {
  can::WiredAndBus bus;
  Attacker atk{"atk", Attacker::traditional_dos()};
  atk.attach_to(bus);
  can::BitController rx{"rx"};
  rx.attach_to(bus);
  bus.run(5000);
  // Back-to-back frames: high busy fraction, many frames injected.
  EXPECT_GT(bus.trace().busy_fraction(0, bus.now()), 0.85);
  EXPECT_GT(atk.node().stats().frames_sent, 30u);
}

TEST(Attacker, FloodStarvesLowerPriorityTraffic) {
  // The suspension attack of Fig. 2: a 0x000 flood blocks everyone.
  can::WiredAndBus bus;
  Attacker atk{"atk", Attacker::traditional_dos()};
  atk.attach_to(bus);
  can::BitController victim{"victim"};
  victim.attach_to(bus);
  can::attach_periodic(victim, can::CanFrame::make(0x300, {0x01}), 400.0);
  bus.run(20'000);
  EXPECT_EQ(victim.stats().frames_sent, 0u);
  EXPECT_GT(victim.queue_depth(), 0u);
  EXPECT_GT(victim.stats().arbitration_losses, 10u);
}

TEST(Attacker, MiscellaneousAttackDoesNotStarveAnyone) {
  // Def. IV.3: an ID above everything loses every arbitration; legitimate
  // traffic flows normally (at most one frame of blocking delay).
  can::WiredAndBus bus;
  Attacker atk{"atk", Attacker::miscellaneous(0x7FF)};
  atk.attach_to(bus);
  can::BitController victim{"victim"};
  victim.attach_to(bus);
  can::attach_periodic(victim, can::CanFrame::make(0x300, {0x01}), 400.0);
  bus.run(20'000);
  EXPECT_GT(victim.stats().frames_sent, 40u);
}

TEST(Attacker, PeriodicInjectionHonoursPeriod) {
  can::WiredAndBus bus;
  auto cfg = Attacker::spoof(0x123);
  cfg.period_bits = 1000;
  Attacker atk{"atk", cfg};
  atk.attach_to(bus);
  can::BitController rx{"rx"};
  rx.attach_to(bus);
  bus.run(10'000);
  EXPECT_NEAR(static_cast<double>(atk.node().stats().frames_sent), 10.0, 2.0);
}

TEST(Attacker, AlternatingRotatesIds) {
  can::WiredAndBus bus;
  auto cfg = Attacker::alternating(0x050, 0x051);
  cfg.period_bits = 500;
  Attacker atk{"atk", cfg};
  atk.attach_to(bus);
  can::BitController rx{"rx"};
  rx.attach_to(bus);
  std::vector<can::CanId> seen;
  rx.set_rx_callback(
      [&](const can::CanFrame& f, BitTime) { seen.push_back(f.id); });
  bus.run(5000);
  ASSERT_GE(seen.size(), 4u);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_NE(seen[i], seen[i - 1]) << "IDs must alternate";
  }
}

TEST(Attacker, RandomPayloadVariesAcrossFrames) {
  can::WiredAndBus bus;
  auto cfg = Attacker::spoof(0x100);
  cfg.period_bits = 300;
  Attacker atk{"atk", cfg};
  atk.attach_to(bus);
  can::BitController rx{"rx"};
  rx.attach_to(bus);
  std::vector<can::CanFrame> seen;
  rx.set_rx_callback(
      [&](const can::CanFrame& f, BitTime) { seen.push_back(f); });
  bus.run(4000);
  ASSERT_GE(seen.size(), 3u);
  bool any_diff = false;
  for (std::size_t i = 1; i < seen.size(); ++i) {
    if (!(seen[i] == seen[0])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Attacker, NonPersistentStaysSilentAfterBusOff) {
  can::WiredAndBus bus;
  auto cfg = Attacker::spoof(0x100);
  cfg.persistent = false;
  Attacker atk{"atk", cfg};
  atk.attach_to(bus);
  can::BitController rx{"rx"};
  rx.attach_to(bus);
  test::FrameKiller killer;  // destroys every frame
  bus.attach(killer);
  bus.run(4000);
  ASSERT_TRUE(atk.node().is_bus_off());
  const auto frames_at_off = atk.frames_injected();
  bus.run(10'000);  // far beyond any recovery window
  EXPECT_TRUE(atk.node().is_bus_off());
  EXPECT_EQ(atk.frames_injected(), frames_at_off);
}

TEST(Attacker, PersistentReattacksAfterRecovery) {
  can::WiredAndBus bus;
  Attacker atk{"atk", Attacker::spoof(0x100)};  // persistent by default
  atk.attach_to(bus);
  can::BitController rx{"rx"};
  rx.attach_to(bus);
  test::FrameKiller killer;
  bus.attach(killer);
  bus.run(20'000);
  // Multiple bus-off / recovery / re-attack rounds.
  EXPECT_GE(atk.node().stats().bus_off_entries, 2u);
  EXPECT_GE(atk.node().stats().recoveries, 1u);
}

}  // namespace
}  // namespace mcan::attack
