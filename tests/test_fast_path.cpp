// Simulation-engine equivalence and contract enforcement.
//
// The bus has three engine tiers, all required to produce BYTE-identical
// recordings — same waveform, same event log, same metrics, same campaign
// report — at any worker count:
//
//   naive       per-bit stepping only (fast path off, batching off)
//   quiescence  + idle-window skipping (PR 4's next_activity/on_idle_skip)
//   batched     + word-level wired-AND over transparent horizons (64 bits
//                 per round, falling back to per-bit in contested regions)
//
// The differential harness here sweeps every scenario in the built-in
// registry — including the BER fault-sweep cells — plus a seeded
// scheduled-flip / stuck-bus fault grid through every engine x {jobs 1,
// jobs 4} and diffs the deterministic JSON reports character by character.
//
// Both kernel contracts are enforced, not trusted: a node that promises
// quiescence (or advertises a drive pattern) and then contradicts it must
// make the bus throw, never silently lose a dominant edge.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/scenarios.hpp"
#include "can/bus.hpp"
#include "can/fault_injector.hpp"
#include "can/node.hpp"
#include "runner/campaign.hpp"
#include "runner/report.hpp"

namespace mcan {
namespace {

/// The three engine tiers under differential test.
enum class Engine { Naive, Quiescence, Batched };

void configure(analysis::ExperimentSpec& spec, Engine engine) {
  spec.fast_path = engine != Engine::Naive;
  spec.batching = engine == Engine::Batched;
}

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::Naive:
      return "naive";
    case Engine::Quiescence:
      return "quiescence";
    default:
      return "batched";
  }
}

constexpr Engine kEngines[] = {Engine::Naive, Engine::Quiescence,
                               Engine::Batched};

/// A node that violates the scheduling contract: it advertises eternal
/// quiescence (kNever) but drives dominant once its clock passes kLieBit.
/// Its on_idle_skip() bookkeeping is honest, so the stale promise surfaces
/// the moment the bus bulk-advances it across the lie.
class LyingNode final : public can::CanNode {
 public:
  static constexpr sim::BitTime kLieBit = 50;

  void tick(sim::BitTime now) override { clock_ = now; }
  [[nodiscard]] sim::BitLevel tx_level() override {
    return clock_ >= kLieBit ? sim::BitLevel::Dominant
                             : sim::BitLevel::Recessive;
  }
  void on_bus_bit(sim::BitLevel /*bus*/) override {}
  [[nodiscard]] sim::BitTime next_activity(
      sim::BitTime /*now*/) const override {
    return can::kNever;  // the lie
  }
  void on_idle_skip(sim::BitTime count) override { clock_ += count; }
  [[nodiscard]] std::string_view name() const override { return "liar"; }

 private:
  sim::BitTime clock_{0};
};

/// A node that violates the batch contract: it advertises an all-recessive
/// drive pattern (and full transparency) while actually driving dominant.
class BatchLyingNode final : public can::CanNode {
 public:
  void tick(sim::BitTime /*now*/) override {}
  [[nodiscard]] sim::BitLevel tx_level() override {
    return sim::BitLevel::Dominant;
  }
  void on_bus_bit(sim::BitLevel /*bus*/) override {}
  [[nodiscard]] DrivePattern drive_pattern(sim::BitTime /*now*/) override {
    return {64, ~0ull};  // the lie
  }
  [[nodiscard]] sim::BitTime transparent_bits(sim::BitTime /*now*/,
                                              std::uint64_t /*word*/,
                                              sim::BitTime count) override {
    return count;
  }
  [[nodiscard]] std::string_view name() const override { return "batch-liar"; }
};

std::string campaign_json(const std::vector<analysis::ExperimentSpec>& specs,
                          Engine engine, unsigned jobs) {
  runner::CampaignConfig cfg;
  for (auto spec : specs) {
    configure(spec, engine);
    cfg.specs.push_back(std::move(spec));
  }
  cfg.seeds = {0, 2};
  cfg.jobs = jobs;
  runner::JsonOptions opts;  // deterministic section only
  return runner::to_json(runner::run_campaign(cfg), opts);
}

std::vector<analysis::ExperimentSpec> registry_specs() {
  std::vector<analysis::ExperimentSpec> specs;
  for (const auto& s : analysis::ScenarioRegistry::built_in().all()) {
    auto spec = s.make();
    // Uniform short recordings keep the sweep cheap; equivalence must hold
    // at any duration, so a shared override loses no coverage.
    spec.duration = sim::Millis{500.0};
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Seeded fault grid beyond the registry's BER cells: scheduled flips land
/// inside batched mid-frame windows (forcing the per-bit fallback) and a
/// stuck-bus window interrupts a frame outright.
std::vector<analysis::ExperimentSpec> fault_grid_specs() {
  std::vector<analysis::ExperimentSpec> specs;
  {
    auto spec = analysis::table2_experiment(2);
    spec.label = "grid: scheduled flips";
    spec.duration = sim::Millis{400.0};
    for (std::uint64_t frame = 1; frame <= 9; frame += 2) {
      can::ScheduledFlip flip;
      flip.frame = frame;
      flip.field = can::Field::Data;
      flip.bit = static_cast<int>(frame) * 3 % 16;
      spec.fault.flips.push_back(flip);
    }
    specs.push_back(std::move(spec));
  }
  {
    auto spec = analysis::table2_experiment(4);
    spec.label = "grid: stuck bus + BER";
    spec.duration = sim::Millis{400.0};
    spec.fault.bit_error_rate = 5e-4;
    spec.fault.stuck.push_back({3000, 40, sim::BitLevel::Dominant});
    spec.fault.stuck.push_back({9000, 25, sim::BitLevel::Recessive});
    specs.push_back(std::move(spec));
  }
  {
    auto spec = analysis::ScenarioRegistry::built_in().make("busy-bus");
    spec.label = "grid: busy bus + BER";
    spec.duration = sim::Millis{400.0};
    spec.fault.bit_error_rate = 1e-4;
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(EngineEquivalence, EveryScenarioByteIdenticalAcrossEnginesAndJobs) {
  const auto specs = registry_specs();
  ASSERT_GE(specs.size(), 10u);

  const std::string reference =
      campaign_json(specs, Engine::Batched, /*jobs=*/1);
  for (const Engine engine : kEngines) {
    for (const unsigned jobs : {1u, 4u}) {
      if (engine == Engine::Batched && jobs == 1) continue;  // the reference
      EXPECT_EQ(reference, campaign_json(specs, engine, jobs))
          << "engine '" << engine_name(engine) << "' at jobs=" << jobs
          << " diverges from the batched jobs=1 reference";
    }
  }
}

TEST(EngineEquivalence, FaultInjectionGridByteIdenticalAcrossEngines) {
  const auto specs = fault_grid_specs();
  const std::string reference =
      campaign_json(specs, Engine::Batched, /*jobs=*/1);
  EXPECT_EQ(reference, campaign_json(specs, Engine::Quiescence, /*jobs=*/1))
      << "fault grid: quiescence engine diverges";
  EXPECT_EQ(reference, campaign_json(specs, Engine::Naive, /*jobs=*/1))
      << "fault grid: naive engine diverges";
  EXPECT_EQ(reference, campaign_json(specs, Engine::Batched, /*jobs=*/4))
      << "fault grid: batched report depends on the worker count";
}

// The registry sweep above is only a multi-bus gate if the registry
// actually contains gateway-bridged scenarios; pin that so dropping them
// can't silently shrink the equivalence surface.
TEST(EngineEquivalence, RegistrySweepCoversMultiBusTopologies) {
  std::size_t multibus = 0;
  for (const auto& s : analysis::ScenarioRegistry::built_in().all()) {
    if (s.make().topology.buses > 1) ++multibus;
  }
  EXPECT_GE(multibus, 2u)
      << "expected gateway-bridged (buses > 1) scenarios in the registry";
}

// Likewise the sweep only exercises the toolkit attack profiles (flood /
// fuzz / replay, plus the rest-bus trace-replay path) if the registry keeps
// its atk-* rows; pin them so they stay under the equivalence gate.
TEST(EngineEquivalence, RegistrySweepCoversAttackProfiles) {
  const auto& reg = analysis::ScenarioRegistry::built_in();
  std::size_t atk = 0;
  for (const auto& s : reg.all()) {
    if (s.name.rfind("atk-", 0) == 0) ++atk;
  }
  EXPECT_GE(atk, 6u) << "expected the atk-* attack-profile scenarios";
  for (const char* name : {"atk-flood-dos", "atk-fuzz-std", "atk-fuzz-ext",
                           "atk-replay-spoof", "atk-replay-csv"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_FALSE(reg.make("atk-replay-csv").trace_replay.text.empty())
      << "atk-replay-csv must exercise the rest-bus trace-replay path";
}

// Cross-bus wakeups with a latency that never aligns with 64-bit batch
// words: gateway release times fall mid-word, so both the quiescence skip
// and the batched engine must chunk around them without losing an edge.
TEST(EngineEquivalence, MultiBusOddLatencyByteIdenticalAcrossEngines) {
  auto base = analysis::ScenarioRegistry::built_in().make("gw-spoof");
  base.topology.gateway_latency = sim::Bits{13};
  base.duration = sim::Millis{400.0};
  const std::vector<analysis::ExperimentSpec> specs{base};
  const std::string reference =
      campaign_json(specs, Engine::Batched, /*jobs=*/1);
  EXPECT_EQ(reference, campaign_json(specs, Engine::Quiescence, /*jobs=*/1))
      << "multi-bus odd latency: quiescence engine diverges";
  EXPECT_EQ(reference, campaign_json(specs, Engine::Naive, /*jobs=*/1))
      << "multi-bus odd latency: naive engine diverges";
}

TEST(EngineEquivalence, GoldenOutputsByteIdenticalWithTimelineCapture) {
  auto make = [](Engine engine) {
    auto spec = analysis::ScenarioRegistry::built_in().make("fig6");
    configure(spec, engine);
    return analysis::run_experiment(spec);
  };
  const auto batched = make(Engine::Batched);
  const auto quiescence = make(Engine::Quiescence);
  const auto naive = make(Engine::Naive);

  EXPECT_EQ(batched.fig6_trace, naive.fig6_trace);
  EXPECT_EQ(batched.fig6_trace, quiescence.fig6_trace);
  EXPECT_EQ(batched.timeline_json, naive.timeline_json);
  EXPECT_EQ(batched.timeline_json, quiescence.timeline_json);
  EXPECT_EQ(batched.events_jsonl, naive.events_jsonl);
  EXPECT_EQ(batched.metrics.to_json(), naive.metrics.to_json());
  EXPECT_EQ(batched.metrics.to_json(), quiescence.metrics.to_json());

  // The perf counters are the one allowed difference: they live outside the
  // deterministic surfaces compared above.
  EXPECT_EQ(naive.bits_skipped, 0u);
  EXPECT_EQ(naive.bits_batched, 0u);
  EXPECT_EQ(quiescence.bits_batched, 0u);
}

TEST(EngineEquivalence, IdleHeavyScenarioActuallySkips) {
  auto spec = analysis::ScenarioRegistry::built_in().make("controllers-only");
  spec.duration = sim::Millis{500.0};
  const auto res = analysis::run_experiment(spec);
  const auto bits = res.metrics.counter_value("bus.bits_simulated");
  ASSERT_GT(bits, 0u);
  // A periodic defender plus the light rest-bus replay leaves the majority
  // of the bus quiescent; the kernel must skip most of it, not just probe.
  EXPECT_GT(res.bits_skipped, bits / 2);
}

TEST(EngineEquivalence, BusyBusScenarioActuallyBatches) {
  auto spec = analysis::ScenarioRegistry::built_in().make("busy-bus");
  spec.duration = sim::Millis{500.0};
  const auto res = analysis::run_experiment(spec);
  const auto bits = res.metrics.counter_value("bus.bits_simulated");
  ASSERT_GT(bits, 0u);
  // The heavily loaded, defense-off bus is almost always mid-frame: the
  // word engine must carry the bulk of the run, not just probe.
  EXPECT_GT(res.bits_batched, bits / 2);
}

TEST(EngineEquivalence, StaleNextActivityThrowsInsteadOfSkipping) {
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  LyingNode liar;
  bus.attach(liar);
  EXPECT_THROW(bus.run(sim::Bits{200}), std::logic_error);
}

TEST(EngineEquivalence, NaiveKernelToleratesTheLiar) {
  // With skipping off the same node is stepped bit by bit — no promise, no
  // violation; its dominant edge simply lands on the wire.
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  bus.set_fast_path(false);
  LyingNode liar;
  bus.attach(liar);
  EXPECT_NO_THROW(bus.run(sim::Bits{200}));
  EXPECT_EQ(bus.bits_skipped(), 0u);
}

TEST(EngineEquivalence, LyingDrivePatternThrowsInsteadOfBatching) {
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  bus.set_fast_path(false);  // isolate the batch probe
  BatchLyingNode liar;
  bus.attach(liar);
  EXPECT_THROW(bus.run(sim::Bits{200}), std::logic_error);
}

TEST(EngineEquivalence, PerBitKernelToleratesTheBatchLiar) {
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  bus.set_fast_path(false);
  bus.set_batching(false);
  BatchLyingNode liar;
  bus.attach(liar);
  EXPECT_NO_THROW(bus.run(sim::Bits{200}));
  EXPECT_EQ(bus.bits_batched(), 0u);
}

TEST(DurationTypes, BitsAndMillisConvertExactly) {
  const sim::BusSpeed speed{50'000};
  EXPECT_EQ(speed.to_bits(sim::Millis{1000.0}).value(), 50'000);
  EXPECT_EQ(speed.to_bits(sim::Millis{2.0}).value(), 100);
  EXPECT_DOUBLE_EQ(speed.to_millis(sim::Bits{50'000}).value(), 1000.0);
  EXPECT_TRUE(sim::Millis{1.0} < sim::Millis{2.0});
  EXPECT_EQ(sim::Bits{10} + sim::Bits{5}, sim::Bits{15});
}

}  // namespace
}  // namespace mcan
