// Quiescence-skipping kernel equivalence and contract enforcement.
//
// The fast path's whole value proposition is "free speed": a recording with
// skipping on must be BYTE-identical to the naive per-bit kernel — same
// waveform, same event log, same metrics, same campaign report — at any
// worker count.  The property test here sweeps every scenario in the
// built-in registry through {fast on, fast off} x {jobs 1, jobs 4} and
// diffs the deterministic JSON reports character by character.
//
// The contract itself (CanNode::next_activity / on_idle_skip) is enforced,
// not trusted: a node that promises quiescence and then wants the bus
// inside the promised window must make the bus throw, never silently lose
// the dominant edge.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/scenarios.hpp"
#include "can/bus.hpp"
#include "can/node.hpp"
#include "runner/campaign.hpp"
#include "runner/report.hpp"

namespace mcan {
namespace {

/// A node that violates the scheduling contract: it advertises eternal
/// quiescence (kNever) but drives dominant once its clock passes kLieBit.
/// Its on_idle_skip() bookkeeping is honest, so the stale promise surfaces
/// the moment the bus bulk-advances it across the lie.
class LyingNode final : public can::CanNode {
 public:
  static constexpr sim::BitTime kLieBit = 50;

  void tick(sim::BitTime now) override { clock_ = now; }
  [[nodiscard]] sim::BitLevel tx_level() override {
    return clock_ >= kLieBit ? sim::BitLevel::Dominant
                             : sim::BitLevel::Recessive;
  }
  void on_bus_bit(sim::BitLevel /*bus*/) override {}
  [[nodiscard]] sim::BitTime next_activity(
      sim::BitTime /*now*/) const override {
    return can::kNever;  // the lie
  }
  void on_idle_skip(sim::BitTime count) override { clock_ += count; }
  [[nodiscard]] std::string_view name() const override { return "liar"; }

 private:
  sim::BitTime clock_{0};
};

std::string campaign_json(const std::vector<std::string>& names,
                          bool fast_path, unsigned jobs) {
  runner::CampaignConfig cfg;
  for (const auto& name : names) {
    auto spec = analysis::ScenarioRegistry::built_in().make(name);
    // Uniform short recordings keep the 4-way sweep cheap; equivalence must
    // hold at any duration, so a shared override loses no coverage.
    spec.duration = sim::Millis{500.0};
    spec.fast_path = fast_path;
    cfg.specs.push_back(std::move(spec));
  }
  cfg.seeds = {0, 2};
  cfg.jobs = jobs;
  runner::JsonOptions opts;  // deterministic section only
  return runner::to_json(runner::run_campaign(cfg), opts);
}

TEST(FastPath, EveryScenarioByteIdenticalAcrossKernelAndJobs) {
  std::vector<std::string> names;
  for (const auto& s : analysis::ScenarioRegistry::built_in().all()) {
    names.push_back(s.name);
  }
  ASSERT_GE(names.size(), 10u);

  const std::string reference = campaign_json(names, /*fast_path=*/true,
                                              /*jobs=*/1);
  EXPECT_EQ(reference, campaign_json(names, /*fast_path=*/false, /*jobs=*/1))
      << "naive kernel diverges from the fast path at jobs=1";
  EXPECT_EQ(reference, campaign_json(names, /*fast_path=*/true, /*jobs=*/4))
      << "fast path report depends on the worker count";
  EXPECT_EQ(reference, campaign_json(names, /*fast_path=*/false, /*jobs=*/4))
      << "naive kernel report depends on the worker count";
}

TEST(FastPath, GoldenOutputsByteIdenticalWithTimelineCapture) {
  auto make = [](bool fast_path) {
    auto spec = analysis::ScenarioRegistry::built_in().make("fig6");
    spec.fast_path = fast_path;
    return analysis::run_experiment(spec);
  };
  const auto fast = make(true);
  const auto naive = make(false);

  EXPECT_EQ(fast.fig6_trace, naive.fig6_trace);
  EXPECT_EQ(fast.timeline_json, naive.timeline_json);
  EXPECT_EQ(fast.events_jsonl, naive.events_jsonl);
  EXPECT_EQ(fast.metrics.to_json(), naive.metrics.to_json());

  // The perf counter is the one allowed difference: it lives outside the
  // deterministic surfaces compared above.
  EXPECT_EQ(naive.bits_skipped, 0u);
}

TEST(FastPath, IdleHeavyScenarioActuallySkips) {
  auto spec = analysis::ScenarioRegistry::built_in().make("controllers-only");
  spec.duration = sim::Millis{500.0};
  const auto res = analysis::run_experiment(spec);
  const auto bits = res.metrics.counter_value("bus.bits_simulated");
  ASSERT_GT(bits, 0u);
  // A periodic defender plus the light rest-bus replay leaves the majority
  // of the bus quiescent; the kernel must skip most of it, not just probe.
  EXPECT_GT(res.bits_skipped, bits / 2);
}

TEST(FastPath, StaleNextActivityThrowsInsteadOfSkipping) {
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  LyingNode liar;
  bus.attach(liar);
  EXPECT_THROW(bus.run(sim::Bits{200}), std::logic_error);
}

TEST(FastPath, NaiveKernelToleratesTheLiar) {
  // With skipping off the same node is stepped bit by bit — no promise, no
  // violation; its dominant edge simply lands on the wire.
  can::WiredAndBus bus{sim::BusSpeed{50'000}};
  bus.set_fast_path(false);
  LyingNode liar;
  bus.attach(liar);
  EXPECT_NO_THROW(bus.run(sim::Bits{200}));
  EXPECT_EQ(bus.bits_skipped(), 0u);
}

TEST(DurationTypes, BitsAndMillisConvertExactly) {
  const sim::BusSpeed speed{50'000};
  EXPECT_EQ(speed.to_bits(sim::Millis{1000.0}).value(), 50'000);
  EXPECT_EQ(speed.to_bits(sim::Millis{2.0}).value(), 100);
  EXPECT_DOUBLE_EQ(speed.to_millis(sim::Bits{50'000}).value(), 1000.0);
  EXPECT_TRUE(sim::Millis{1.0} < sim::Millis{2.0});
  EXPECT_EQ(sim::Bits{10} + sim::Bits{5}, sim::Bits{15});
}

}  // namespace
}  // namespace mcan
