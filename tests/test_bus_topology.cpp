// Bus-level topology tests: many-node arbitration chains, saturation
// behaviour and trace bookkeeping on larger networks.
#include <gtest/gtest.h>

#include <memory>

#include "can/bus.hpp"
#include "can/controller.hpp"
#include "can/periodic.hpp"
#include "sim/rng.hpp"

namespace mcan::can {
namespace {

using sim::BitTime;

TEST(BusTopology, TwentyNodeArbitrationResolvesStrictlyByPriority) {
  WiredAndBus bus;
  std::vector<std::unique_ptr<BitController>> nodes;
  std::vector<CanId> order;
  BitController obs{"obs"};
  obs.attach_to(bus);
  obs.set_rx_callback(
      [&](const CanFrame& f, BitTime) { order.push_back(f.id); });

  sim::Rng rng{99};
  std::vector<CanId> ids;
  while (ids.size() < 20) {
    const auto id = static_cast<CanId>(rng.uniform(0, kMaxStdId));
    if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
      ids.push_back(id);
    }
  }
  for (const auto id : ids) {
    auto n = std::make_unique<BitController>("n" + std::to_string(id));
    n->attach_to(bus);
    n->enqueue(CanFrame::make(id, {0x01}));
    nodes.push_back(std::move(n));
  }
  bus.run(20 * 150);

  // All 20 enqueued simultaneously: delivery order == strict ID order.
  ASSERT_EQ(order.size(), ids.size());
  auto sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(order, sorted);
  for (const auto& n : nodes) {
    EXPECT_EQ(n->tec(), 0) << n->name();
    EXPECT_EQ(n->stats().tx_errors, 0u) << n->name();
  }
}

TEST(BusTopology, SaturatedBusDropsNoFramesJustDelaysThem) {
  WiredAndBus bus{sim::BusSpeed{125'000}};
  std::vector<std::unique_ptr<BitController>> nodes;
  std::uint64_t delivered = 0;
  BitController obs{"obs"};
  obs.attach_to(bus);
  obs.set_rx_callback([&](const CanFrame&, BitTime) { ++delivered; });

  // Ten senders whose combined analytic load is > 100 %: the bus runs at
  // saturation but the protocol stays loss-free for queued frames.
  for (int i = 0; i < 10; ++i) {
    auto n = std::make_unique<BitController>("n" + std::to_string(i));
    n->attach_to(bus);
    attach_periodic(*n,
                    CanFrame::make_pattern(
                        static_cast<CanId>(0x100 + i * 0x10), 8, 0xAB),
                    900.0, 37.0 * i);
    nodes.push_back(std::move(n));
  }
  bus.run(50'000);
  std::uint64_t sent = 0;
  for (const auto& n : nodes) sent += n->stats().frames_sent;
  EXPECT_EQ(delivered, sent);
  EXPECT_GT(bus.trace().busy_fraction(0, bus.now()), 0.85);
  // Low-priority senders are delayed, not erred.
  for (const auto& n : nodes) EXPECT_EQ(n->stats().tx_errors, 0u);
}

TEST(BusTopology, TraceAnnotationsSurvive) {
  WiredAndBus bus;
  bus.trace().annotate(5, "marker");
  bus.run(10);
  ASSERT_EQ(bus.trace().annotations().size(), 1u);
  EXPECT_EQ(bus.trace().annotations()[0].text, "marker");
  EXPECT_EQ(bus.trace().size(), 10u);
}

TEST(BusTopology, RunMsMatchesSpeedConversion) {
  WiredAndBus bus{sim::BusSpeed{250'000}};
  bus.run_for(sim::Millis{4.0});
  EXPECT_EQ(bus.now(), 1000u);
}

TEST(BusTopology, LastLevelTracksBus) {
  WiredAndBus bus;
  BitController tx{"tx"};
  tx.attach_to(bus);
  bus.run(3);
  EXPECT_EQ(bus.last_level(), sim::BitLevel::Recessive);
  tx.enqueue(CanFrame::make(0x000, {}));
  bus.run(10);  // idle wait + decision bit
  bus.run(3);   // SOF + first ID bits are dominant for 0x000
  EXPECT_EQ(bus.last_level(), sim::BitLevel::Dominant);
}

}  // namespace
}  // namespace mcan::can
