// Campaign-runner properties (DESIGN.md §4.6 extended to parallel runs):
//   * determinism — a campaign aggregated with jobs=1 and jobs=8 produces
//     byte-identical deterministic JSON for the same seed range, because
//     per-task seeds derive from task identity (sim::derive_seed) and the
//     reduction walks result slots in grid order;
//   * crash isolation — an invalid spec fails its own tasks with a recorded
//     error and leaves every other grid cell intact.
#include "runner/campaign.hpp"

#include <gtest/gtest.h>

#include <set>

#include "runner/cli.hpp"
#include "runner/report.hpp"
#include "sim/rng.hpp"

namespace mcan::runner {
namespace {

/// Short recordings keep the grid cheap: 300 ms is enough for ~5 bus-off
/// cycles per attacker.
CampaignConfig small_campaign(unsigned jobs) {
  CampaignConfig cfg;
  for (const int n : {2, 4, 5}) {
    auto spec = analysis::table2_experiment(n);
    spec.duration = sim::Millis{300.0};
    cfg.specs.push_back(std::move(spec));
  }
  cfg.seeds = {3, 9};
  cfg.jobs = jobs;
  return cfg;
}

TEST(CampaignRunner, ResultIsBitIdenticalAcrossWorkerCounts) {
  const auto serial = run_campaign(small_campaign(1));
  const auto parallel = run_campaign(small_campaign(8));

  EXPECT_EQ(serial.jobs_used, 1u);
  EXPECT_EQ(parallel.jobs_used, 8u);
  EXPECT_EQ(serial.failed_tasks(), 0u);

  // The deterministic JSON section must match byte for byte — this covers
  // every aggregate double down to the last ulp.
  EXPECT_EQ(to_json(serial), to_json(parallel));

  // Spot-check a few raw aggregates as well, so a report-writer bug can't
  // mask an aggregation difference.
  ASSERT_EQ(serial.specs.size(), parallel.specs.size());
  for (std::size_t i = 0; i < serial.specs.size(); ++i) {
    const auto& a = serial.specs[i];
    const auto& b = parallel.specs[i];
    EXPECT_EQ(a.busoff_ms.count, b.busoff_ms.count);
    EXPECT_DOUBLE_EQ(a.busoff_ms.mean, b.busoff_ms.mean);
    EXPECT_DOUBLE_EQ(a.busoff_ms.stddev, b.busoff_ms.stddev);
    EXPECT_DOUBLE_EQ(a.busoff_ms_pct.p99, b.busoff_ms_pct.p99);
    EXPECT_EQ(a.counterattacks, b.counterattacks);
  }
}

TEST(CampaignRunner, SeedsProduceDistinctDerivedStreams) {
  auto cfg = small_campaign(2);
  const auto rep = run_campaign(cfg);
  std::set<std::uint64_t> derived;
  for (const auto& task : rep.tasks) {
    EXPECT_TRUE(task.ok) << task.error;
    EXPECT_GE(task.seed, cfg.seeds.begin);
    EXPECT_LT(task.seed, cfg.seeds.end);
    derived.insert(task.derived_seed);
  }
  // Every (spec, seed) cell gets its own RNG stream.
  EXPECT_EQ(derived.size(), rep.tasks.size());
}

TEST(CampaignRunner, InvalidSpecIsIsolatedFromHealthyTasks) {
  auto cfg = small_campaign(4);
  analysis::ExperimentSpec broken;
  broken.label = "broken";
  broken.attackers.push_back(attack::AttackerConfig{});  // empty ID list
  cfg.specs.insert(cfg.specs.begin() + 1, broken);

  const auto rep = run_campaign(cfg);
  const std::size_t seeds = cfg.seeds.size();
  EXPECT_EQ(rep.failed_tasks(), seeds);

  ASSERT_EQ(rep.specs.size(), 4u);
  EXPECT_EQ(rep.specs[1].failed, seeds);
  EXPECT_EQ(rep.specs[1].busoff_ms.count, 0u);
  for (const std::size_t healthy : {0u, 2u, 3u}) {
    EXPECT_EQ(rep.specs[healthy].failed, 0u) << healthy;
    EXPECT_GT(rep.specs[healthy].busoff_ms.count, 0u) << healthy;
  }
  for (const auto& task : rep.tasks) {
    if (task.spec_index == 1) {
      EXPECT_FALSE(task.ok);
      EXPECT_NE(task.error.find("empty ID list"), std::string::npos)
          << task.error;
    } else {
      EXPECT_TRUE(task.ok) << task.error;
    }
  }

  // The report still renders, with the failure visible.
  const auto json = to_json(rep);
  EXPECT_NE(json.find("\"failed\":" + std::to_string(seeds)),
            std::string::npos);
  EXPECT_NE(json.find("empty ID list"), std::string::npos);
}

TEST(CampaignRunner, UnusableConfigThrows) {
  CampaignConfig empty;
  EXPECT_THROW((void)run_campaign(empty), std::invalid_argument);

  auto cfg = small_campaign(1);
  cfg.seeds = {5, 5};
  EXPECT_THROW((void)run_campaign(cfg), std::invalid_argument);
}

TEST(CampaignRunner, ProgressReachesTotalExactlyOnce) {
  auto cfg = small_campaign(4);
  std::size_t calls = 0;
  std::size_t last_done = 0;
  std::size_t completions = 0;
  cfg.progress = [&](std::size_t done, std::size_t total) {
    ++calls;
    EXPECT_EQ(total, cfg.specs.size() * cfg.seeds.size());
    EXPECT_EQ(done, last_done + 1);  // serialized, monotone
    last_done = done;
    if (done == total) ++completions;
  };
  (void)run_campaign(cfg);
  EXPECT_EQ(calls, cfg.specs.size() * cfg.seeds.size());
  EXPECT_EQ(completions, 1u);
}

TEST(DeriveSeed, IsPureAndSpreadsStreams) {
  EXPECT_EQ(sim::derive_seed(42, 7), sim::derive_seed(42, 7));
  std::set<std::uint64_t> seen;
  for (std::uint64_t root : {0ull, 1ull, 42ull}) {
    for (std::uint64_t stream = 0; stream < 100; ++stream) {
      seen.insert(sim::derive_seed(root, stream));
    }
  }
  EXPECT_EQ(seen.size(), 300u);  // no collisions across roots or streams
}

TEST(RunnerCli, ParsesAndStripsFlags) {
  const char* raw[] = {"prog",          "campaign", "--jobs",  "4",
                       "--seeds=2..10", "5",        "--report", "out.json",
                       "--progress",    nullptr};
  char* argv[10];
  for (int i = 0; i < 9; ++i) argv[i] = const_cast<char*>(raw[i]);
  argv[9] = nullptr;
  int argc = 9;

  const auto opts = parse_cli(argc, argv);
  EXPECT_EQ(opts.jobs, 4u);
  EXPECT_EQ(opts.seeds.begin, 2u);
  EXPECT_EQ(opts.seeds.end, 10u);
  EXPECT_EQ(opts.report_path, "out.json");
  EXPECT_TRUE(opts.progress);

  // Only the positional arguments survive, in order.
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "campaign");
  EXPECT_STREQ(argv[2], "5");
  EXPECT_EQ(argv[3], nullptr);
}

TEST(RunnerCli, SeedRangeForms) {
  const auto full = parse_seed_range("3..11");
  EXPECT_EQ(full.begin, 3u);
  EXPECT_EQ(full.end, 11u);
  const auto count = parse_seed_range("32");
  EXPECT_EQ(count.begin, 0u);
  EXPECT_EQ(count.end, 32u);
  EXPECT_THROW((void)parse_seed_range("5..5"), std::invalid_argument);
  EXPECT_THROW((void)parse_seed_range("a..b"), std::invalid_argument);
  EXPECT_THROW((void)parse_seed_range(""), std::invalid_argument);
}

}  // namespace
}  // namespace mcan::runner
