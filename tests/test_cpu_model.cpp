// Tests for the scenario-level CPU model (Sec. V-D) including the
// measured-workload variant driven by real monitor statistics.
#include "core/cpu_model.hpp"

#include <gtest/gtest.h>

#include "can/bus.hpp"
#include "can/periodic.hpp"
#include "core/michican_node.hpp"
#include "restbus/replay.hpp"
#include "restbus/vehicles.hpp"

namespace mcan::core {
namespace {

IvnConfig veh_d() {
  return IvnConfig{restbus::vehicle_matrix(restbus::Vehicle::D, 1).ecu_ids()};
}

TEST(CpuModel, MeanDecisionDepthOverIds) {
  IdRangeSet d;
  d.add(0x400, 0x7FF);
  const auto fsm = DetectionFsm::build(d);
  // Every ID decides after exactly one bit.
  EXPECT_DOUBLE_EQ(mean_decision_depth_uniform(fsm), 1.0);
  EXPECT_DOUBLE_EQ(mean_decision_depth(fsm, {0x000, 0x700}), 1.0);
  EXPECT_DOUBLE_EQ(mean_decision_depth(fsm, {}), 0.0);
}

TEST(CpuModel, EstimateTracksScenario) {
  const auto ivn = veh_d();
  const auto due = mcu::arduino_due();
  const auto full = estimate_cpu(ivn, ivn.highest(), Scenario::Full, due,
                                 125e3);
  const auto light = estimate_cpu(ivn, ivn.highest(), Scenario::Light, due,
                                  125e3);
  EXPECT_GT(full.fsm_nodes, light.fsm_nodes);
  EXPECT_GT(full.load.active_load, light.load.active_load);
  EXPECT_GT(full.load.combined_load, 0.0);
}

TEST(CpuModel, MeasuredWorkloadMatchesAnalyticModel) {
  // Run a real simulation with restbus traffic, then compute the CPU load
  // from the monitor's per-path counters and compare against the analytic
  // estimate: they must agree within a few points.
  can::WiredAndBus bus{sim::BusSpeed{125'000}};
  const auto matrix = restbus::vehicle_matrix(restbus::Vehicle::D, 1);
  const IvnConfig ivn{matrix.ecu_ids()};
  MichiCanNodeConfig cfg;
  cfg.own_id = ivn.highest();
  MichiCanNode def{"defender", ivn, cfg};
  def.attach_to(bus);
  restbus::RestbusSim rb{
      matrix.without(cfg.own_id).scaled_to_load(125e3, 0.4), bus};
  bus.run_for(sim::Millis{2000.0});

  const auto due = mcu::arduino_due();
  const auto measured = measured_cpu(def.monitor().stats(),
                                     def.fsm().node_count(), due, 125e3);
  const auto analytic = estimate_cpu(ivn, cfg.own_id, Scenario::Full, due,
                                     125e3, /*busy_fraction=*/0.4);
  EXPECT_GT(measured.active_load, 0.2);
  EXPECT_NEAR(measured.active_load, analytic.load.active_load, 0.08);
  EXPECT_NEAR(measured.combined_load, analytic.load.combined_load, 0.10);
  EXPECT_LT(measured.idle_load, measured.active_load);
}

TEST(CpuModel, MeasuredLoadZeroWithoutTraffic) {
  MonitorStats idle;
  idle.idle_bits = 1000;
  const auto load =
      measured_cpu(idle, 100, mcu::arduino_due(), 125e3);
  EXPECT_EQ(load.active_load, 0.0);
  EXPECT_GT(load.idle_load, 0.0);
  EXPECT_NEAR(load.combined_load, load.idle_load, 1e-12);
}

}  // namespace
}  // namespace mcan::core
