// Metrics-registry and profiler semantics: the shard-per-worker model only
// works if merge is associative over shards and serialization is a pure
// function of the merged content.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "obs/jsonfmt.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace mcan::obs {
namespace {

TEST(Registry, CountersAccumulateAndDefaultToZero) {
  Registry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.counter_value("missing"), 0u);

  reg.counter("bits") += 10;
  auto& c = reg.counter("bits");  // cached reference, hot-path style
  c += 5;
  EXPECT_EQ(reg.counter_value("bits"), 15u);
  EXPECT_FALSE(reg.empty());
}

TEST(Registry, MergeSumsCountersAndMaxesGauges) {
  Registry a;
  a.counter("frames") += 3;
  a.gauge("tec") = 96;

  Registry b;
  b.counter("frames") += 4;
  b.counter("only_b") += 1;
  b.gauge("tec") = 32;

  a.merge(b);
  EXPECT_EQ(a.counter_value("frames"), 7u);
  EXPECT_EQ(a.counter_value("only_b"), 1u);
  EXPECT_EQ(a.gauge_value("tec"), 96);

  Registry c;
  c.gauge("tec") = 128;
  a.merge(c);
  EXPECT_EQ(a.gauge_value("tec"), 128);
}

TEST(Registry, MergeIsOrderIndependent) {
  // Three worker shards merged in different orders must serialize
  // identically — the campaign's jobs=1-vs-N byte-identity in miniature.
  const auto shard = [](std::uint64_t n) {
    Registry r;
    r.counter("x") += n;
    r.gauge("g") = static_cast<std::int64_t>(n);
    r.histogram("h", {1.0, 2.0}).observe(static_cast<double>(n));
    return r;
  };
  Registry fwd;
  for (const auto n : {1u, 2u, 3u}) fwd.merge(shard(n));
  Registry rev;
  for (const auto n : {3u, 2u, 1u}) rev.merge(shard(n));
  EXPECT_EQ(fwd.to_json(), rev.to_json());
}

TEST(Histogram, ObserveUsesInclusiveUpperBounds) {
  Registry reg;
  auto& h = reg.histogram("lat", {1.0, 2.0, 4.0});
  h.observe(0.5);  // <= 1        -> bucket 0
  h.observe(1.0);  // == bound    -> bucket 0 (inclusive)
  h.observe(3.0);  //             -> bucket 2
  h.observe(9.0);  // > last      -> overflow
  ASSERT_EQ(h.buckets.size(), 4u);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[1], 0u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 13.5);
}

TEST(Histogram, MergeSumsBucketsAndRejectsBoundMismatch) {
  Registry a;
  a.histogram("h", {1.0, 2.0}).observe(0.5);
  Registry b;
  b.histogram("h", {1.0, 2.0}).observe(5.0);
  a.merge(b);
  const auto* h = a.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->buckets[0], 1u);
  EXPECT_EQ(h->buckets[2], 1u);

  Registry c;
  (void)c.histogram("h", {1.0, 3.0});
  EXPECT_THROW(a.merge(c), std::invalid_argument);
  EXPECT_THROW((void)a.histogram("h", {9.0}), std::invalid_argument);
}

TEST(Registry, ToJsonIsSortedAndStable) {
  Registry reg;
  reg.counter("z.last") += 1;
  reg.counter("a.first") += 2;
  reg.gauge("g") = -7;
  reg.histogram("h", {0.5}).observe(0.25);

  const auto json = reg.to_json();
  // std::map ordering: "a.first" renders before "z.last".
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_NE(json.find("\"g\":-7"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[0.5]"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_EQ(json, reg.to_json());

  EXPECT_EQ(Registry{}.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(Profiler, AddAndMergeSumPhases) {
  Profiler a;
  a.add("sim", 10.0);
  a.add("sim", 5.0);
  a.add("harvest", 1.0);

  Profiler b;
  b.add("sim", 2.5, 3);

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_ms("sim"), 17.5);
  EXPECT_DOUBLE_EQ(a.total_ms("missing"), 0.0);
  ASSERT_EQ(a.phases().count("sim"), 1u);
  EXPECT_EQ(a.phases().at("sim").calls, 5u);

  const auto json = a.to_json();
  EXPECT_NE(json.find("\"sim\":{\"calls\":5"), std::string::npos);
  EXPECT_NE(json.find("\"harvest\""), std::string::npos);
}

TEST(Profiler, ScopeMeasuresNonNegativeTime) {
  Profiler p;
  EXPECT_TRUE(p.empty());
  {
    const auto s = p.scope("work");
    (void)s;
  }
  EXPECT_FALSE(p.empty());
  EXPECT_EQ(p.phases().at("work").calls, 1u);
  EXPECT_GE(p.total_ms("work"), 0.0);
}

TEST(JsonFmt, DoubleRoundTripAndEscapes) {
  EXPECT_EQ(fmt_double(0.5), "0.5");
  EXPECT_EQ(fmt_double(-3.0), "-3");
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_escape(std::string{"\x01"}), "\\u0001");
}

}  // namespace
}  // namespace mcan::obs
