// Fleet deployment tests: the Sec. IV-A full/split scenarios at network
// scale — redundancy, DoS coverage, spoofing coverage, CPU savings.
#include "core/fleet.hpp"

#include <gtest/gtest.h>

#include "attack/attacker.hpp"
#include "restbus/vehicles.hpp"

namespace mcan::core {
namespace {

using attack::Attacker;

restbus::CommMatrix small_matrix() {
  // A compact IVN so fleet tests stay fast: 8 ECUs, one ID each.
  std::vector<restbus::MessageDef> msgs;
  const can::CanId ids[] = {0x0C0, 0x120, 0x173, 0x1B0,
                            0x240, 0x300, 0x3A0, 0x450};
  int i = 0;
  for (const auto id : ids) {
    msgs.push_back({id, 50.0 + 25.0 * i, 8,
                    "M" + std::to_string(i), "E" + std::to_string(i)});
    ++i;
  }
  return restbus::CommMatrix{"small", std::move(msgs)};
}

TEST(Fleet, BuildsOneNodePerMessage) {
  can::WiredAndBus bus{sim::BusSpeed{125'000}};
  Fleet fleet{small_matrix(), bus};
  EXPECT_EQ(fleet.size(), 8u);
  EXPECT_EQ(fleet.full_nodes() + fleet.light_nodes(), 8u);
  EXPECT_EQ(fleet.light_nodes(), 4u);  // split: lower half light
  EXPECT_NE(fleet.find(0x173), nullptr);
  EXPECT_EQ(fleet.find(0x7FF), nullptr);
}

TEST(Fleet, ApplicationTrafficFlows) {
  can::WiredAndBus bus{sim::BusSpeed{125'000}};
  Fleet fleet{small_matrix(), bus};
  bus.run_for(sim::Millis{500.0});
  EXPECT_GT(fleet.total_frames_sent(), 30u);
  EXPECT_FALSE(fleet.any_defender_bus_off());
  EXPECT_EQ(fleet.max_defender_tec(), 0);
  EXPECT_EQ(fleet.total_counterattacks(), 0u);  // no attack, no reaction
}

class FleetPolicy : public ::testing::TestWithParam<DeploymentPolicy> {};

TEST_P(FleetPolicy, DosAttackHandledPerPolicy) {
  can::WiredAndBus bus{sim::BusSpeed{125'000}};
  FleetConfig cfg;
  cfg.policy = GetParam();
  Fleet fleet{small_matrix(), bus, cfg};
  auto acfg = Attacker::targeted_dos(0x050);
  acfg.persistent = false;
  Attacker atk{"attacker", acfg};
  atk.attach_to(bus);
  bus.run_for(sim::Millis{200.0});

  if (GetParam() == DeploymentPolicy::DetectionOnly) {
    EXPECT_FALSE(atk.node().is_bus_off());
    EXPECT_GT(fleet.total_attacks_detected(), 0u);
    EXPECT_EQ(fleet.total_counterattacks(), 0u);
  } else {
    // AllFull and Split both eradicate the DoS (the upper half provides
    // coverage in the split case).
    EXPECT_TRUE(atk.node().is_bus_off());
    EXPECT_GT(fleet.total_counterattacks(), 0u);
  }
  EXPECT_FALSE(fleet.any_defender_bus_off());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, FleetPolicy,
    ::testing::Values(DeploymentPolicy::AllFull, DeploymentPolicy::Split,
                      DeploymentPolicy::DetectionOnly),
    [](const ::testing::TestParamInfo<DeploymentPolicy>& p) {
      switch (p.param) {
        case DeploymentPolicy::AllFull: return std::string{"AllFull"};
        case DeploymentPolicy::Split: return std::string{"Split"};
        case DeploymentPolicy::DetectionOnly:
          return std::string{"DetectionOnly"};
      }
      return std::string{"?"};
    });

TEST(Fleet, SplitCutsNetworkCpuBill) {
  // The Sec. IV-A cost argument, measured: run identical traffic under
  // both policies and compare the summed CPU loads.
  auto run = [](DeploymentPolicy policy) {
    can::WiredAndBus bus{sim::BusSpeed{125'000}};
    FleetConfig cfg;
    cfg.policy = policy;
    Fleet fleet{small_matrix(), bus, cfg};
    bus.run_for(sim::Millis{1000.0});
    return fleet.total_cpu_load(mcu::arduino_due(), 125e3);
  };
  const double full = run(DeploymentPolicy::AllFull);
  const double split = run(DeploymentPolicy::Split);
  EXPECT_LT(split, full);
  EXPECT_GT(split, 0.5 * full * 0.5);  // sane, non-degenerate numbers
}

TEST(Fleet, SpoofingOfLightNodeStillPunished) {
  // In the split deployment the light half still guards its own IDs.
  can::WiredAndBus bus{sim::BusSpeed{125'000}};
  FleetConfig cfg;
  cfg.policy = DeploymentPolicy::Split;
  cfg.with_app_traffic = false;  // silent victims: avoid same-ID collisions
  Fleet fleet{small_matrix(), bus, cfg};
  auto acfg = Attacker::spoof(0x0C0);  // lowest ID = a light node
  acfg.persistent = false;
  Attacker atk{"attacker", acfg};
  atk.attach_to(bus);
  bus.run_for(sim::Millis{200.0});
  EXPECT_TRUE(atk.node().is_bus_off());
  EXPECT_GT(fleet.find(0x0C0)->monitor().stats().counterattacks, 0u);
}

TEST(Fleet, RedundantDefendersAgreeOnAttackCount) {
  // Every full-scenario node must see the same number of attacks — the
  // distributed-detection redundancy claim.
  can::WiredAndBus bus{sim::BusSpeed{125'000}};
  FleetConfig cfg;
  cfg.policy = DeploymentPolicy::AllFull;
  cfg.with_app_traffic = false;
  Fleet fleet{small_matrix(), bus, cfg};
  auto acfg = Attacker::targeted_dos(0x050);
  acfg.persistent = false;
  Attacker atk{"attacker", acfg};
  atk.attach_to(bus);
  bus.run_for(sim::Millis{200.0});
  ASSERT_TRUE(atk.node().is_bus_off());
  const auto expected = fleet.nodes()[0]->monitor().stats().attacks_detected;
  EXPECT_GT(expected, 0u);
  for (const auto& node : fleet.nodes()) {
    EXPECT_EQ(node->monitor().stats().attacks_detected, expected)
        << node->name();
  }
}

}  // namespace
}  // namespace mcan::core
