// Tests for the DBC signal codec: bit packing in both byte orders,
// scaling, sign extension, and SG_ line parsing.
#include "restbus/signals.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace mcan::restbus {
namespace {


SignalDef make_sig(std::string name, int start, int length,
                   ByteOrder order = ByteOrder::Intel,
                   bool is_signed = false, double scale = 1.0,
                   double offset = 0.0) {
  SignalDef s;
  s.name = std::move(name);
  s.start_bit = start;
  s.length = length;
  s.order = order;
  s.is_signed = is_signed;
  s.scale = scale;
  s.offset = offset;
  return s;
}

can::CanFrame empty_frame(std::uint8_t dlc = 8) {
  can::CanFrame f;
  f.id = 0x123;
  f.dlc = dlc;
  return f;
}

TEST(Signals, IntelByteOrderPacksLsbFirst) {
  // 16-bit Intel signal at start bit 8: occupies bytes 1..2, byte 1 = LSB.
  const auto sig = make_sig("s", 8, 16);
  auto f = empty_frame();
  insert_raw(f, sig, 0xBEEF);
  EXPECT_EQ(f.data[1], 0xEF);
  EXPECT_EQ(f.data[2], 0xBE);
  EXPECT_EQ(extract_raw(f, sig), 0xBEEFu);
}

TEST(Signals, MotorolaByteOrderPacksMsbFirst) {
  // Classic Motorola 16-bit at start bit 7 (MSB of byte 0).
  const auto sig = make_sig("s", 7, 16, ByteOrder::Motorola);
  auto f = empty_frame();
  insert_raw(f, sig, 0xBEEF);
  EXPECT_EQ(f.data[0], 0xBE);
  EXPECT_EQ(f.data[1], 0xEF);
  EXPECT_EQ(extract_raw(f, sig), 0xBEEFu);
}

TEST(Signals, MotorolaSawtoothAcrossByteBoundary) {
  // 12-bit Motorola signal starting mid-byte: start bit 3 of byte 0
  // (position 3), descending 3..0 then byte 1 bits 7..0.
  const auto sig = make_sig("s", 3, 12, ByteOrder::Motorola);
  auto f = empty_frame();
  insert_raw(f, sig, 0xABC);
  EXPECT_EQ(extract_raw(f, sig), 0xABCu);
  EXPECT_EQ(f.data[0] & 0x0F, 0xA);
  EXPECT_EQ(f.data[1], 0xBC);
}

TEST(Signals, RoundTripRandomSignals) {
  sim::Rng rng{0x516};
  for (int trial = 0; trial < 500; ++trial) {
    SignalDef sig;
    sig.length = static_cast<int>(rng.uniform(1, 32));
    sig.order = rng.chance(0.5) ? ByteOrder::Intel : ByteOrder::Motorola;
    if (sig.order == ByteOrder::Intel) {
      sig.start_bit = static_cast<int>(
          rng.uniform(0, static_cast<std::uint64_t>(64 - sig.length)));
    } else {
      // Pick a start position whose descending run stays inside 8 bytes.
      do {
        sig.start_bit = static_cast<int>(rng.uniform(0, 63));
      } while (!sig.fits(8));
    }
    auto f = empty_frame();
    const auto raw = rng.uniform(0, (1ull << sig.length) - 1);
    insert_raw(f, sig, raw);
    ASSERT_EQ(extract_raw(f, sig), raw)
        << "start=" << sig.start_bit << " len=" << sig.length << " order="
        << (sig.order == ByteOrder::Intel ? "intel" : "motorola");
  }
}

TEST(Signals, NeighbouringSignalsDoNotClobberEachOther) {
  const auto a = make_sig("a", 0, 12);
  const auto b = make_sig("b", 12, 12);
  auto f = empty_frame();
  insert_raw(f, a, 0xFFF);
  insert_raw(f, b, 0x000);
  EXPECT_EQ(extract_raw(f, a), 0xFFFu);
  insert_raw(f, b, 0xABC);
  EXPECT_EQ(extract_raw(f, a), 0xFFFu);
  EXPECT_EQ(extract_raw(f, b), 0xABCu);
}

TEST(Signals, ScaleAndOffset) {
  // Typical engine-speed signal: 0.25 rpm/bit.
  const auto sig = make_sig("rpm", 24, 16, ByteOrder::Intel, false, 0.25);
  auto f = empty_frame();
  encode_signal(f, sig, 800.0);
  EXPECT_DOUBLE_EQ(decode_signal(f, sig), 800.0);
  EXPECT_EQ(extract_raw(f, sig), 3200u);
}

TEST(Signals, SignedSignalsSignExtend) {
  // Steering angle style: signed 12-bit, 0.1 deg/bit.
  const auto sig = make_sig("angle", 0, 12, ByteOrder::Intel, true, 0.1);
  auto f = empty_frame();
  encode_signal(f, sig, -12.5);
  EXPECT_NEAR(decode_signal(f, sig), -12.5, 1e-9);
  encode_signal(f, sig, 100.0);
  EXPECT_NEAR(decode_signal(f, sig), 100.0, 1e-9);
}

TEST(Signals, EncodeClampsToRepresentableRange) {
  const auto sig = make_sig("u4", 0, 4);
  auto f = empty_frame();
  encode_signal(f, sig, 500.0);  // raw would be 500 >> 4 bits
  EXPECT_EQ(extract_raw(f, sig), 15u);
  const auto s4 = make_sig("s4", 8, 4, ByteOrder::Intel, true);
  encode_signal(f, s4, -100.0);
  EXPECT_DOUBLE_EQ(decode_signal(f, s4), -8.0);
}

TEST(Signals, FitsChecksPayloadBounds) {
  EXPECT_TRUE(make_sig("x", 56, 8).fits(8));
  EXPECT_FALSE(make_sig("x", 57, 8).fits(8));
  EXPECT_FALSE(make_sig("x", 0, 8).fits(0));
  // Motorola starting at bit 0 of byte 0 can only hold 1 bit in byte 0.
  EXPECT_TRUE(make_sig("x", 0, 9, ByteOrder::Motorola).fits(2));
}

TEST(Signals, ParseSgLine) {
  const auto sig = parse_sg_line(
      R"( SG_ EngineSpeed : 24|16@1+ (0.25,0) [0|16383.75] "rpm" ECM)");
  ASSERT_TRUE(sig.has_value());
  EXPECT_EQ(sig->name, "EngineSpeed");
  EXPECT_EQ(sig->start_bit, 24);
  EXPECT_EQ(sig->length, 16);
  EXPECT_EQ(sig->order, ByteOrder::Intel);
  EXPECT_FALSE(sig->is_signed);
  EXPECT_DOUBLE_EQ(sig->scale, 0.25);
  EXPECT_DOUBLE_EQ(sig->offset, 0.0);
  EXPECT_DOUBLE_EQ(sig->max, 16383.75);
  EXPECT_EQ(sig->unit, "rpm");
}

TEST(Signals, ParseSignedMotorola) {
  const auto sig =
      parse_sg_line(R"(SG_ Angle : 7|12@0- (0.1,-5) [-200|200] "deg" X)");
  ASSERT_TRUE(sig.has_value());
  EXPECT_EQ(sig->order, ByteOrder::Motorola);
  EXPECT_TRUE(sig->is_signed);
  EXPECT_DOUBLE_EQ(sig->offset, -5.0);
}

TEST(Signals, NonSgLinesReturnNullopt) {
  EXPECT_FALSE(parse_sg_line("BO_ 291 X: 8 E").has_value());
  EXPECT_FALSE(parse_sg_line("").has_value());
}

TEST(Signals, MalformedSgLinesThrow) {
  EXPECT_THROW((void)parse_sg_line("SG_ X : garbage (1,0)"),
               std::runtime_error);
  EXPECT_THROW((void)parse_sg_line("SG_ X : 0|0@1+ (1,0)"),
               std::runtime_error);
  EXPECT_THROW((void)parse_sg_line("SG_ X : 0|8@1+ (0,0)"),
               std::runtime_error);
}

TEST(Signals, SgLineRoundTrips) {
  auto sig = make_sig("Speed", 8, 13, ByteOrder::Intel, false, 0.01);
  sig.max = 81.91;
  sig.unit = "m/s";
  const auto parsed = parse_sg_line(to_sg_line(sig));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, sig.name);
  EXPECT_EQ(parsed->start_bit, sig.start_bit);
  EXPECT_EQ(parsed->length, sig.length);
  EXPECT_DOUBLE_EQ(parsed->scale, sig.scale);
  EXPECT_EQ(parsed->unit, sig.unit);
}

}  // namespace
}  // namespace mcan::restbus
