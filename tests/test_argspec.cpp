// The shared CLI flag table: one ArgSpec declaration per flag drives
// parsing (both "--name value" and "--name=value"), the rendered help
// text, and unknown-flag diagnostics with near-miss suggestions — plus the
// ScenarioRegistry's matching suggest() behavior for unknown scenario
// operands.
#include "runner/argspec.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/scenarios.hpp"

namespace mcan {
namespace {

using runner::ArgTable;

/// A mutable argv for extract_argv tests (argv strings must be writable).
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    for (auto& s : storage) ptrs.push_back(s.data());
    ptrs.push_back(nullptr);
    argc = static_cast<int>(storage.size());
  }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  int argc{};
};

TEST(ArgTable, ValueFlagsAcceptSpaceAndEqualsForms) {
  std::uint64_t jobs = 0;
  std::string report;
  ArgTable table;
  table.u64("--jobs", "N", "worker threads", &jobs)
      .str("--report", "PATH", "write report", &report);

  auto rest = table.parse({"--jobs", "8", "--report=out.json", "exp2"});
  EXPECT_EQ(jobs, 8u);
  EXPECT_EQ(report, "out.json");
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], "exp2");

  rest = table.parse({"--jobs=3", "--report", "b.json"});
  EXPECT_EQ(jobs, 3u);
  EXPECT_EQ(report, "b.json");
  EXPECT_TRUE(rest.empty());
}

TEST(ArgTable, PositionalOperandsSurviveInOrder) {
  bool progress = false;
  ArgTable table;
  table.flag("--progress", "narrate", &progress);
  const auto rest = table.parse({"one", "--progress", "two", "three"});
  EXPECT_TRUE(progress);
  EXPECT_EQ(rest, (std::vector<std::string>{"one", "two", "three"}));
}

TEST(ArgTable, UnknownDashArgumentThrowsWithNearMiss) {
  std::uint64_t jobs = 0;
  ArgTable table;
  table.u64("--jobs", "N", "worker threads", &jobs);
  try {
    table.parse({"--jbos", "4"}, ArgTable::Unknown::Reject, "campaign");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("campaign"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--jbos"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean --jobs?"), std::string::npos) << msg;
  }
}

TEST(ArgTable, FarFetchedUnknownGetsNoSuggestion) {
  std::uint64_t jobs = 0;
  ArgTable table;
  table.u64("--jobs", "N", "worker threads", &jobs);
  try {
    table.parse({"--completely-unrelated"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
  }
}

TEST(ArgTable, KeepPolicyPassesUnknownsThroughInOrder) {
  bool progress = false;
  ArgTable table;
  table.flag("--progress", "narrate", &progress);
  const auto rest = table.parse({"--benchmark_filter=x", "--progress", "pos"},
                                ArgTable::Unknown::Keep);
  EXPECT_TRUE(progress);
  EXPECT_EQ(rest, (std::vector<std::string>{"--benchmark_filter=x", "pos"}));
}

TEST(ArgTable, BooleanFlagsMatchExactNameOnly) {
  bool progress = false;
  ArgTable table;
  table.flag("--progress", "narrate", &progress);
  // "--progress=x" must not half-match the boolean flag; it is diagnosed
  // as unknown (with the flag itself as the suggestion).
  try {
    table.parse({"--progress=x"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_FALSE(progress);
    EXPECT_NE(std::string{e.what()}.find("--progress"), std::string::npos);
  }
}

TEST(ArgTable, NoFlagVariantAssignsFalse) {
  bool fast_path = true;
  ArgTable table;
  table.flag("--no-fast-path", "pin the naive kernel", &fast_path, false);
  EXPECT_TRUE(table.parse({"--no-fast-path"}).empty());
  EXPECT_FALSE(fast_path);
}

TEST(ArgTable, MissingValueAndBadNumbersThrow) {
  std::uint64_t seed = 0;
  int cases = 0;
  ArgTable table;
  table.u64("--base-seed", "N", "root seed", &seed)
      .int_in("--cases", "N", "fuzz cases", 1, 100, &cases);

  EXPECT_THROW(table.parse({"--base-seed"}), std::invalid_argument);
  EXPECT_THROW(table.parse({"--base-seed", "12abc"}), std::invalid_argument);
  EXPECT_THROW(table.parse({"--cases", "0"}), std::invalid_argument);
  EXPECT_THROW(table.parse({"--cases", "101"}), std::invalid_argument);
  EXPECT_THROW(table.parse({"--cases=x"}), std::invalid_argument);
  EXPECT_NO_THROW(table.parse({"--cases", "100"}));
  EXPECT_EQ(cases, 100);
}

TEST(ArgTable, UsageAndHelpNameEveryFlag) {
  std::uint64_t jobs = 0;
  bool progress = false;
  ArgTable table;
  table.u64("--jobs", "N", "worker threads (0 = hardware)", &jobs)
      .flag("--progress", "narrate per-task progress", &progress);

  EXPECT_EQ(table.usage(), "[--jobs N] [--progress]");
  const std::string help = table.help_text();
  EXPECT_NE(help.find("--jobs N"), std::string::npos);
  EXPECT_NE(help.find("worker threads (0 = hardware)"), std::string::npos);
  EXPECT_NE(help.find("--progress"), std::string::npos);
  EXPECT_NE(help.find("narrate per-task progress"), std::string::npos);
}

TEST(ArgTable, ExtractArgvConsumesFlagsAndCompacts) {
  std::uint64_t jobs = 0;
  bool progress = false;
  ArgTable table;
  table.u64("--jobs", "N", "worker threads", &jobs)
      .flag("--progress", "narrate", &progress);

  Argv a{{"prog", "--jobs", "4", "campaign", "--progress", "exp2",
          "--unknown"}};
  table.extract_argv(a.argc, a.ptrs.data());
  EXPECT_EQ(jobs, 4u);
  EXPECT_TRUE(progress);
  ASSERT_EQ(a.argc, 4);
  EXPECT_STREQ(a.ptrs[0], "prog");
  EXPECT_STREQ(a.ptrs[1], "campaign");
  EXPECT_STREQ(a.ptrs[2], "exp2");
  EXPECT_STREQ(a.ptrs[3], "--unknown");
  EXPECT_EQ(a.ptrs[4], nullptr);
}

TEST(ParseHelpers, NameTheOffendingFlag) {
  EXPECT_EQ(runner::parse_u64_arg("42", "--seeds"), 42u);
  try {
    (void)runner::parse_u64_arg("4x", "--seeds");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("--seeds"), std::string::npos);
  }
  try {
    (void)runner::parse_int_arg("9", 1, 8, "--shards");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("--shards"), std::string::npos);
  }
}

TEST(ParseHelpers, RejectSignsAndWhitespace) {
  // Regression: std::stoull accepts "-1" (wrapping to 2^64-1), "+1", and
  // leading whitespace.  parse_u64_arg must take plain digits only.
  EXPECT_EQ(runner::parse_u64_arg("0", "--seeds"), 0u);
  EXPECT_EQ(runner::parse_u64_arg("18446744073709551615", "--seeds"),
            18446744073709551615ull);
  for (const char* bad : {"-1", "+1", " 1", "1 ", "\t7", "", "0x10"}) {
    EXPECT_THROW((void)runner::parse_u64_arg(bad, "--seeds"),
                 std::invalid_argument)
        << "input: '" << bad << "'";
  }
}

TEST(ScenarioSuggestions, TyposAndPrefixesResolveToNearMisses) {
  const auto& reg = analysis::ScenarioRegistry::built_in();
  {
    const auto s = reg.suggest("exp2x");
    ASSERT_FALSE(s.empty());
    EXPECT_NE(std::find(s.begin(), s.end(), "exp2"), s.end());
  }
  {
    const auto s = reg.suggest("gw-spof");
    ASSERT_FALSE(s.empty());
    EXPECT_EQ(s.front(), "gw-spoof");
  }
  EXPECT_TRUE(reg.suggest("zzzzzzzzzz").empty());
}

TEST(ScenarioSuggestions, MakeErrorNamesTheNearMiss) {
  const auto& reg = analysis::ScenarioRegistry::built_in();
  try {
    (void)reg.make("gw-spof");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("gw-spof"), std::string::npos) << msg;
    EXPECT_NE(msg.find("gw-spoof"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace mcan
