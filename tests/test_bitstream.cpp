// Unit and property tests for frame serialization, bit stuffing and
// destuffing.
#include "can/bitstream.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace mcan::can {
namespace {

using sim::BitLevel;

CanFrame random_frame(sim::Rng& rng) {
  CanFrame f;
  f.id = static_cast<CanId>(rng.uniform(0, kMaxStdId));
  f.rtr = rng.chance(0.1);
  f.dlc = static_cast<std::uint8_t>(rng.uniform(0, 8));
  for (int i = 0; i < f.dlc; ++i) {
    f.data[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(rng.uniform(0, 255));
  }
  return f;
}

TEST(Bitstream, UnstuffedLengthMatchesLayout) {
  const auto f = CanFrame::make(0x123, {0xAA, 0xBB});
  // 1 SOF + 11 ID + 1 RTR + 1 IDE + 1 r0 + 4 DLC + 16 data + 15 CRC
  // + 1 CRC delim + 1 ACK + 1 ACK delim + 7 EOF = 60
  EXPECT_EQ(unstuffed_bits(f).size(), 60u);
  EXPECT_EQ(unstuffed_frame_length(2, false), 60);
  EXPECT_EQ(stuffed_region_length(2, false), 50);
}

TEST(Bitstream, SofIsDominantTrailerIsRecessive) {
  const auto bits = unstuffed_bits(CanFrame::make(0x000, {}));
  EXPECT_EQ(bits.front(), 0);
  // CRC delim, ACK slot, ACK delim, EOF are all recessive for the sender.
  for (std::size_t i = bits.size() - 10; i < bits.size(); ++i) {
    EXPECT_EQ(bits[i], 1) << "trailer bit " << i;
  }
}

TEST(Bitstream, IdSerializedMsbFirst) {
  const auto bits = unstuffed_bits(CanFrame::make(0x555, {}));
  // 0x555 = 101 0101 0101
  const std::array<int, 11> expect{1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  for (int i = 0; i < 11; ++i) {
    EXPECT_EQ(bits[static_cast<std::size_t>(1 + i)], expect[static_cast<std::size_t>(i)]);
  }
}

TEST(Bitstream, FieldAtCoversWholeFrame) {
  const int dlc = 8;
  const int len = unstuffed_frame_length(dlc, false);
  EXPECT_EQ(field_at(0, dlc, false), Field::Sof);
  EXPECT_EQ(field_at(1, dlc, false), Field::Id);
  EXPECT_EQ(field_at(11, dlc, false), Field::Id);
  EXPECT_EQ(field_at(12, dlc, false), Field::Rtr);
  EXPECT_EQ(field_at(13, dlc, false), Field::Ide);
  EXPECT_EQ(field_at(14, dlc, false), Field::R0);
  EXPECT_EQ(field_at(15, dlc, false), Field::Dlc);
  EXPECT_EQ(field_at(18, dlc, false), Field::Dlc);
  EXPECT_EQ(field_at(19, dlc, false), Field::Data);
  EXPECT_EQ(field_at(19 + 63, dlc, false), Field::Data);
  EXPECT_EQ(field_at(19 + 64, dlc, false), Field::Crc);
  EXPECT_EQ(field_at(len - 10, dlc, false), Field::CrcDelim);
  EXPECT_EQ(field_at(len - 9, dlc, false), Field::AckSlot);
  EXPECT_EQ(field_at(len - 8, dlc, false), Field::AckDelim);
  EXPECT_EQ(field_at(len - 7, dlc, false), Field::Eof);
  EXPECT_EQ(field_at(len - 1, dlc, false), Field::Eof);
}

TEST(Bitstream, NoSixEqualBitsInStuffedRegionOnWire) {
  sim::Rng rng{123};
  for (int trial = 0; trial < 500; ++trial) {
    const auto f = random_frame(rng);
    const auto wire = wire_bits(f);
    const int stuffed_end = stuffed_region_length(f.dlc, f.rtr);
    int run = 0;
    BitLevel prev{};
    for (const auto& b : wire) {
      if (b.unstuffed_pos >= stuffed_end) break;
      if (run > 0 && b.level == prev) {
        ++run;
      } else {
        prev = b.level;
        run = 1;
      }
      ASSERT_LT(run, 6) << "stuffing violated for frame " << f.to_string();
    }
  }
}

TEST(Bitstream, StuffBitsHaveOppositeLevelOfPrecedingRun) {
  // ID 0x000 yields SOF + many dominant bits: stuff bits must appear.
  const auto wire = wire_bits(CanFrame::make(0x000, {0x00}));
  bool saw_stuff = false;
  for (std::size_t i = 1; i < wire.size(); ++i) {
    if (wire[i].is_stuff) {
      saw_stuff = true;
      EXPECT_NE(wire[i].level, wire[i - 1].level);
    }
  }
  EXPECT_TRUE(saw_stuff);
}

TEST(Bitstream, AllDominantIdStuffsAfterFiveBits) {
  // SOF(0) + five more dominant ID bits = run of 6?  No: stuffing inserts a
  // recessive bit after the run of 5 (SOF + 4 ID bits).
  const auto wire = wire_bits(CanFrame::make(0x000, {}));
  EXPECT_FALSE(wire[0].is_stuff);  // SOF
  // positions 1..4 are ID bits, position 5 must be the recessive stuff bit
  EXPECT_TRUE(wire[5].is_stuff);
  EXPECT_EQ(wire[5].level, BitLevel::Recessive);
}

TEST(Bitstream, DestufferRoundTripsRandomFrames) {
  sim::Rng rng{99};
  for (int trial = 0; trial < 500; ++trial) {
    const auto f = random_frame(rng);
    const auto wire = wire_bits(f);
    const auto raw = unstuffed_bits(f);
    const int stuffed_end = stuffed_region_length(f.dlc, f.rtr);

    Destuffer d;
    std::vector<std::uint8_t> recovered;
    for (const auto& b : wire) {
      if (b.unstuffed_pos >= stuffed_end) break;
      const auto r = d.feed(b.level);
      ASSERT_NE(r, Destuffer::Result::StuffError);
      if (r == Destuffer::Result::DataBit) {
        recovered.push_back(static_cast<std::uint8_t>(sim::to_bit(b.level)));
      }
    }
    ASSERT_EQ(recovered.size(), static_cast<std::size_t>(stuffed_end));
    for (int i = 0; i < stuffed_end; ++i) {
      ASSERT_EQ(recovered[static_cast<std::size_t>(i)],
                raw[static_cast<std::size_t>(i)])
          << "bit " << i << " of " << f.to_string();
    }
  }
}

TEST(Bitstream, DestufferFlagsSixEqualBits) {
  Destuffer d;
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(d.feed(BitLevel::Dominant), Destuffer::Result::StuffError);
  }
  EXPECT_EQ(d.feed(BitLevel::Dominant), Destuffer::Result::StuffError);
}

TEST(Bitstream, DestufferRunLengthTracksConsecutiveBits) {
  Destuffer d;
  (void)d.feed(BitLevel::Recessive);
  (void)d.feed(BitLevel::Recessive);
  EXPECT_EQ(d.run_length(), 2);
  (void)d.feed(BitLevel::Dominant);
  EXPECT_EQ(d.run_length(), 1);
}

TEST(Bitstream, WireLengthWithinCanBounds) {
  // A classical CAN 2.0A frame is at most ~132 bits on the wire
  // (64 data bits, worst-case stuffing); at least 44 + 3 IFS for dlc 0.
  sim::Rng rng{5};
  for (int trial = 0; trial < 200; ++trial) {
    const auto f = random_frame(rng);
    const auto wire = wire_bits(f);
    EXPECT_GE(wire.size(), 44u);
    EXPECT_LE(wire.size(), 160u);
  }
}

TEST(Bitstream, RtrFrameHasNoDataField) {
  const auto wire = wire_bits(CanFrame::make_remote(0x123, 8));
  for (const auto& b : wire) EXPECT_NE(b.field, Field::Data);
}

}  // namespace
}  // namespace mcan::can
