// Gateway-bridged multi-bus vehicles: store-and-forward latency ordering,
// cross-segment detection parity, and attack containment.
//
// The paper's evaluation vehicles carry two CAN buses joined by a central
// gateway (Sec. V-A).  restbus::VehicleTopology co-simulates N segments in
// lockstep chunks; these tests pin the semantics the chunking must
// preserve — forwarded frames arrive exactly `latency` bits after
// reception, in order, and a body-bus MichiCAN defender sees a
// powertrain-bus spoofing attack exactly as it would a local one — plus
// the containment the gateway provides against unrouted DoS floods.
#include "restbus/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/scenarios.hpp"
#include "can/controller.hpp"
#include "can/gateway.hpp"

namespace mcan {
namespace {

using restbus::TopologyConfig;
using restbus::VehicleTopology;

struct RxRecord {
  can::CanFrame frame;
  sim::BitTime at;
};

/// Two segments bridged by one gateway routing 0x100 and 0x101; a sender
/// on bus 0 and recording listeners on both segments.
struct BridgedEnv {
  explicit BridgedEnv(sim::Bits latency) {
    TopologyConfig cfg;
    cfg.buses = 2;
    cfg.gateway_latency = latency;
    cfg.routes = {{0x100, false}, {0x101, false}};
    topo = std::make_unique<VehicleTopology>(std::move(cfg));
    sender.attach_to(topo->bus(0));
    local.attach_to(topo->bus(0));
    remote.attach_to(topo->bus(1));
    local.set_rx_callback([this](const can::CanFrame& f, sim::BitTime at) {
      on_bus0.push_back({f, at});
    });
    remote.set_rx_callback([this](const can::CanFrame& f, sim::BitTime at) {
      on_bus1.push_back({f, at});
    });
  }

  std::unique_ptr<VehicleTopology> topo;
  can::BitController sender{"sender"};
  can::BitController local{"local"};
  can::BitController remote{"remote"};
  std::vector<RxRecord> on_bus0;
  std::vector<RxRecord> on_bus1;
};

TEST(MultiBusForwarding, DeliveryLagsReceptionByExactlyTheLatency) {
  const sim::Bits latency{48};
  BridgedEnv env{latency};
  env.sender.enqueue(can::CanFrame::make(0x100, {0xAB}));
  env.topo->run(sim::Bits{1500});

  ASSERT_EQ(env.on_bus0.size(), 1u);
  ASSERT_EQ(env.on_bus1.size(), 1u);
  EXPECT_EQ(env.on_bus1[0].frame, env.on_bus0[0].frame);
  // The gateway parks the frame for `latency` bits, then its egress
  // controller arbitrates and retransmits — a full frame on the wire —
  // so the remote listener completes reception at least latency + one
  // frame after the local one, and never earlier than the release point.
  EXPECT_GE(env.on_bus1[0].at, env.on_bus0[0].at + latency.value());
  EXPECT_EQ(env.topo->frames_forwarded(), 1u);
  EXPECT_EQ(env.topo->frames_dropped(), 0u);
}

TEST(MultiBusForwarding, HigherLatencyDeliversStrictlyLater) {
  BridgedEnv fast{sim::Bits{16}};
  BridgedEnv slow{sim::Bits{400}};
  for (auto* env : {&fast, &slow}) {
    env->sender.enqueue(can::CanFrame::make(0x100, {0x01, 0x02}));
    env->topo->run(sim::Bits{2000});
    ASSERT_EQ(env->on_bus1.size(), 1u);
  }
  // Same frame, same ingress timing; only the parking time differs.
  EXPECT_EQ(fast.on_bus0[0].at, slow.on_bus0[0].at);
  EXPECT_GT(slow.on_bus1[0].at, fast.on_bus1[0].at);
  EXPECT_GE(slow.on_bus1[0].at - fast.on_bus1[0].at,
            static_cast<sim::BitTime>(400 - 16));
}

TEST(MultiBusForwarding, ForwardedFramesKeepTheirOrder) {
  BridgedEnv env{sim::Bits{64}};
  env.sender.enqueue(can::CanFrame::make(0x101, {0x01}));
  env.sender.enqueue(can::CanFrame::make(0x100, {0x02}));
  env.sender.enqueue(can::CanFrame::make(0x101, {0x03}));
  env.topo->run(sim::Bits{4000});

  ASSERT_EQ(env.on_bus1.size(), 3u);
  // Store-and-forward must preserve the ingress order per direction even
  // though 0x100 would win arbitration over 0x101 if released together.
  EXPECT_EQ(env.on_bus1[0].frame.id, 0x101u);
  EXPECT_EQ(env.on_bus1[1].frame.id, 0x100u);
  EXPECT_EQ(env.on_bus1[2].frame.id, 0x101u);
  for (std::size_t i = 1; i < env.on_bus1.size(); ++i) {
    EXPECT_LT(env.on_bus1[i - 1].at, env.on_bus1[i].at);
  }
}

TEST(MultiBusForwarding, UnroutedIdsNeverCross) {
  BridgedEnv env{sim::Bits{64}};
  env.sender.enqueue(can::CanFrame::make(0x200, {0xFF}));  // not in routes
  env.topo->run(sim::Bits{1500});
  ASSERT_EQ(env.on_bus0.size(), 1u);
  EXPECT_TRUE(env.on_bus1.empty());
  EXPECT_EQ(env.topo->frames_forwarded(), 0u);
}

TEST(VehicleTopology, SingleBusDegeneratesToNoGateways) {
  TopologyConfig cfg;
  cfg.buses = 1;
  VehicleTopology topo{std::move(cfg)};
  EXPECT_EQ(topo.bus_count(), 1u);
  EXPECT_EQ(topo.gateway_count(), 0u);
  topo.run(sim::Bits{100});
  EXPECT_EQ(topo.now(), 100u);
}

TEST(VehicleTopology, RejectsUnusableConfigs) {
  {
    TopologyConfig cfg;
    cfg.buses = 0;
    EXPECT_THROW(VehicleTopology{std::move(cfg)}, std::invalid_argument);
  }
  {
    TopologyConfig cfg;
    cfg.buses = 2;
    cfg.gateway_latency = sim::Bits{0};  // would forward mid-chunk
    EXPECT_THROW(VehicleTopology{std::move(cfg)}, std::invalid_argument);
  }
}

TEST(TopologySpecValidation, RejectsBadSegmentWiring) {
  auto spec = analysis::table2_experiment(2);
  spec.topology.buses = 2;
  spec.topology.attacker_bus = 2;  // out of range
  EXPECT_THROW(analysis::validate(spec), std::invalid_argument);

  spec.topology.attacker_bus = 0;
  spec.topology.gateway_latency = sim::Bits{0};
  EXPECT_THROW(analysis::validate(spec), std::invalid_argument);

  spec.topology.gateway_latency = sim::Bits{64};
  spec.topology.routes = {{0x800, false}};  // beyond the standard ID space
  EXPECT_THROW(analysis::validate(spec), std::invalid_argument);

  spec.topology.routes = {{0x173, false}};
  EXPECT_NO_THROW(analysis::validate(spec));
}

/// gw-spoof vs exp2: the spoofed 0x173 is forwarded onto the defender's
/// segment, so detection must behave exactly as for a local attacker —
/// same FSM, same detection bit — while the counterattack destroys only
/// the forwarded copy, leaving the attacker healthy on its own segment.
TEST(GatewayBridgedExperiments, SpoofDetectionParityWithSingleBus) {
  auto bridged = analysis::ScenarioRegistry::built_in().make("gw-spoof");
  bridged.duration = sim::Millis{500.0};
  auto single = analysis::table2_experiment(2);
  single.duration = sim::Millis{500.0};

  const auto rb = analysis::run_experiment(bridged);
  const auto rs = analysis::run_experiment(single);

  EXPECT_GT(rb.attacks_detected, 0u);
  EXPECT_GT(rs.attacks_detected, 0u);
  EXPECT_GT(rb.counterattacks, 0u);
  // Arbitration-monitor detection fires at the same bit position whether
  // the spoofed frame arrived locally or through the gateway.
  EXPECT_DOUBLE_EQ(rb.mean_detection_bit, rs.mean_detection_bit);

  // Containment difference: the local attacker is driven into bus-off by
  // the counterattack; the bridged attacker's own segment never carries
  // the injected error bits, so it completes no bus-off cycle.
  ASSERT_EQ(rb.attackers.size(), 1u);
  ASSERT_EQ(rs.attackers.size(), 1u);
  EXPECT_EQ(rb.attackers[0].busoff_count, 0u);
  EXPECT_FALSE(rb.attackers[0].ended_bus_off);
  EXPECT_GT(rs.attackers[0].busoff_count, 0u);

  // The gateway actually carried the attack across.
  EXPECT_GT(rb.metrics.counter_value("gateway.forwarded"), 0u);
}

/// gw-dos: the DoS flood's ID is not in the routing table, so the
/// defender's segment never sees it — no detections, no counterattacks,
/// and the body-bus restbus traffic flows unharmed.
TEST(GatewayBridgedExperiments, UnroutedDosIsContainedToItsSegment) {
  auto spec = analysis::ScenarioRegistry::built_in().make("gw-dos");
  spec.duration = sim::Millis{500.0};
  const auto res = analysis::run_experiment(spec);

  EXPECT_EQ(res.attacks_detected, 0u);
  EXPECT_EQ(res.counterattacks, 0u);
  EXPECT_GT(res.restbus_frames_delivered, 0u);
  ASSERT_EQ(res.attackers.size(), 1u);
  EXPECT_EQ(res.attackers[0].busoff_count, 0u);
}

/// gw-forward: benign cross-segment traffic only — the defense must stay
/// silent while frames cross.
TEST(GatewayBridgedExperiments, BenignForwardingRaisesNoDetections) {
  auto spec = analysis::ScenarioRegistry::built_in().make("gw-forward");
  spec.duration = sim::Millis{500.0};
  const auto res = analysis::run_experiment(spec);

  EXPECT_EQ(res.attacks_detected, 0u);
  EXPECT_EQ(res.false_detections, 0u);
  EXPECT_GT(res.metrics.counter_value("gateway.forwarded"), 0u);
}

}  // namespace
}  // namespace mcan
