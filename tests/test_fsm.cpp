// Unit and property tests for the detection FSM (paper Sec. IV-A):
// correctness against brute force, earliest-decision property, node counts.
#include "core/fsm.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hpp"

namespace mcan::core {
namespace {

IvnConfig random_ivn(sim::Rng& rng, int max_ecus = 80) {
  std::set<can::CanId> ids;
  const auto n = rng.uniform(2, static_cast<std::uint64_t>(max_ecus));
  while (ids.size() < n) {
    ids.insert(static_cast<can::CanId>(rng.uniform(0, can::kMaxStdId)));
  }
  return IvnConfig{{ids.begin(), ids.end()}};
}

TEST(DetectionFsm, SingleIdDecidesAtFullDepthOnly) {
  IdRangeSet d;
  d.add(0x555);
  const auto fsm = DetectionFsm::build(d);
  const auto dec = fsm.decide(0x555);
  EXPECT_TRUE(dec.malicious);
  EXPECT_EQ(dec.bit_position, 11);  // a lone ID needs all 11 bits
  EXPECT_FALSE(fsm.decide(0x554).malicious);
  EXPECT_FALSE(fsm.decide(0x7FF).malicious);
}

TEST(DetectionFsm, FullRangeDecidesImmediately) {
  IdRangeSet d;
  d.add(0x000, can::kMaxStdId);
  const auto fsm = DetectionFsm::build(d);
  EXPECT_EQ(fsm.node_count(), 0u);
  const auto dec = fsm.decide(0x123);
  EXPECT_TRUE(dec.malicious);
  EXPECT_EQ(dec.bit_position, 0);
}

TEST(DetectionFsm, EmptyRangeNeverFlags) {
  const auto fsm = DetectionFsm::build(IdRangeSet{});
  for (std::uint32_t id = 0; id <= can::kMaxStdId; ++id) {
    EXPECT_FALSE(fsm.decide(static_cast<can::CanId>(id)).malicious);
  }
}

TEST(DetectionFsm, UpperHalfDecidesAfterOneBit) {
  IdRangeSet d;
  d.add(0x400, 0x7FF);
  const auto fsm = DetectionFsm::build(d);
  EXPECT_EQ(fsm.decide(0x400).bit_position, 1);
  EXPECT_EQ(fsm.decide(0x3FF).bit_position, 1);
  EXPECT_TRUE(fsm.decide(0x7FF).malicious);
  EXPECT_FALSE(fsm.decide(0x000).malicious);
}

TEST(DetectionFsm, MatchesBruteForceOnRandomIvns) {
  sim::Rng rng{31337};
  for (int trial = 0; trial < 200; ++trial) {
    const auto ivn = random_ivn(rng);
    const auto own = ivn.ecus()[rng.uniform(0, ivn.ecus().size() - 1)];
    const auto ranges = ivn.detection_ranges(own);
    const auto fsm = DetectionFsm::build(ranges);
    for (std::uint32_t id = 0; id <= can::kMaxStdId; ++id) {
      ASSERT_EQ(fsm.decide(static_cast<can::CanId>(id)).malicious,
                ranges.contains(static_cast<can::CanId>(id)))
          << "own=" << own << " id=" << id;
    }
  }
}

TEST(DetectionFsm, DecidesAtEarliestPossiblePrefix) {
  // Property: at the decision depth k, all IDs sharing the k-bit prefix
  // have the same verdict, and at depth k-1 they do not — i.e. no
  // prefix-based detector could have decided earlier.
  sim::Rng rng{99};
  for (int trial = 0; trial < 50; ++trial) {
    const auto ivn = random_ivn(rng, 40);
    const auto own = ivn.ecus().back();
    const auto ranges = ivn.detection_ranges(own);
    const auto fsm = DetectionFsm::build(ranges);
    for (int probe = 0; probe < 64; ++probe) {
      const auto id = static_cast<can::CanId>(rng.uniform(0, can::kMaxStdId));
      const auto dec = fsm.decide(id);
      const int k = dec.bit_position;
      if (k == 0) continue;
      // All IDs with the same k-bit prefix agree with the verdict.
      const int rest = can::kIdBits - k;
      const auto lo = static_cast<std::uint32_t>(id >> rest) << rest;
      const auto hi = lo + ((1u << rest) - 1);
      bool all_same = true;
      for (std::uint32_t j = lo; j <= hi; ++j) {
        if (ranges.contains(static_cast<can::CanId>(j)) != dec.malicious) {
          all_same = false;
          break;
        }
      }
      EXPECT_TRUE(all_same) << "verdict not uniform under prefix";
      // The (k-1)-bit prefix is ambiguous (otherwise the FSM would have
      // decided a bit earlier).
      const int rest1 = rest + 1;
      const auto lo1 = static_cast<std::uint32_t>(id >> rest1) << rest1;
      const auto hi1 = lo1 + ((1u << rest1) - 1);
      bool ambiguous = false;
      for (std::uint32_t j = lo1; j <= hi1; ++j) {
        if (ranges.contains(static_cast<can::CanId>(j)) != dec.malicious) {
          ambiguous = true;
          break;
        }
      }
      EXPECT_TRUE(ambiguous) << "FSM decided later than necessary";
    }
  }
}

TEST(DetectionFsm, RunnerMatchesDecide) {
  sim::Rng rng{5150};
  const auto ivn = random_ivn(rng);
  const auto fsm =
      DetectionFsm::build(ivn.detection_ranges(ivn.ecus().back()));
  for (int probe = 0; probe < 500; ++probe) {
    const auto id = static_cast<can::CanId>(rng.uniform(0, can::kMaxStdId));
    auto runner = fsm.runner();
    std::optional<DetectionFsm::Decision> got;
    for (int i = can::kIdBits - 1; i >= 0 && !got; --i) {
      got = runner.step((id >> i) & 1);
    }
    const auto want = fsm.decide(id);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->malicious, want.malicious);
    EXPECT_EQ(got->bit_position, want.bit_position);
  }
}

TEST(DetectionFsm, RunnerIgnoresBitsAfterDecision) {
  IdRangeSet d;
  d.add(0x400, 0x7FF);
  const auto fsm = DetectionFsm::build(d);
  auto runner = fsm.runner();
  const auto dec = runner.step(1);
  ASSERT_TRUE(dec.has_value());
  EXPECT_TRUE(dec->malicious);
  EXPECT_FALSE(runner.step(0).has_value());
  EXPECT_TRUE(runner.decided());
}

TEST(DetectionFsm, LeafVisitCoversWholeIdSpace) {
  sim::Rng rng{8080};
  const auto ivn = random_ivn(rng);
  const auto ranges = ivn.detection_ranges(ivn.ecus().back());
  const auto fsm = DetectionFsm::build(ranges);
  std::uint64_t total = 0, malicious = 0;
  fsm.for_each_leaf([&](int, std::uint32_t count, bool mal) {
    total += count;
    if (mal) malicious += count;
  });
  EXPECT_EQ(total, 2048u);
  EXPECT_EQ(malicious, ranges.id_count());
}

TEST(DetectionFsm, LightFsmIsMuchSmallerThanFull) {
  sim::Rng rng{123};
  const auto ivn = random_ivn(rng, 80);
  const auto own = ivn.ecus().back();
  const auto full =
      DetectionFsm::build(ivn.detection_ranges(own, Scenario::Full));
  const auto light =
      DetectionFsm::build(ivn.detection_ranges(own, Scenario::Light));
  EXPECT_LT(light.node_count(), full.node_count());
  EXPECT_LE(light.node_count(), 11u);
}

}  // namespace
}  // namespace mcan::core
