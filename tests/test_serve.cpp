// The CellStore seam and the serve layer on top of it: cache-key
// fingerprints, the cell codec, cold-vs-warm byte identity through
// run_campaign()/run_fuzz(), DiskStore pathologies (corruption, eviction,
// engine-version invalidation), the michican.serve.v1 wire protocol, and an
// in-process daemon end-to-end over a real Unix socket.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "analysis/scenarios.hpp"
#include "runner/campaign.hpp"
#include "runner/cell_codec.hpp"
#include "runner/cell_store.hpp"
#include "runner/fuzz.hpp"
#include "runner/report.hpp"
#include "serve/client.hpp"
#include "serve/disk_store.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace {

using namespace mcan;
namespace fs = std::filesystem;

analysis::ExperimentSpec small_spec() {
  auto spec = analysis::ScenarioRegistry::built_in().make("4");
  spec.duration = sim::Millis{200};
  return spec;
}

runner::CampaignConfig small_campaign(runner::CellStore* cells = nullptr) {
  runner::CampaignConfig cfg;
  cfg.specs = {small_spec()};
  cfg.seeds = {0, 3};
  cfg.jobs = 2;
  cfg.cells = cells;
  return cfg;
}

/// Unique scratch directory under the system temp dir (socket paths must
/// stay under the ~108-char sun_path limit, so never use the build tree).
fs::path scratch_dir(const std::string& tag) {
  const auto dir = fs::temp_directory_path() /
                   ("michican_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------- keys --

TEST(CellKey, FingerprintIsStableAcrossCalls) {
  const auto a = runner::spec_fingerprint(small_spec());
  const auto b = runner::spec_fingerprint(small_spec());
  EXPECT_EQ(a, b);
}

TEST(CellKey, FingerprintExcludesSeedAndEngineToggles) {
  auto spec = small_spec();
  const auto base = runner::spec_fingerprint(spec);
  spec.seed = 12345;  // keyed separately as the derived seed
  EXPECT_EQ(base, runner::spec_fingerprint(spec));
  spec.fast_path = !spec.fast_path;  // equivalence-gated: same result
  spec.batching = !spec.batching;
  spec.capture_timeline = true;
  EXPECT_EQ(base, runner::spec_fingerprint(spec));
}

TEST(CellKey, FingerprintSeesSemanticFields) {
  auto spec = small_spec();
  const auto base = runner::spec_fingerprint(spec);
  spec.duration = sim::Millis{spec.duration.value() + 1};
  const auto longer = runner::spec_fingerprint(spec);
  EXPECT_NE(base, longer);
  spec = small_spec();
  spec.defense_enabled = !spec.defense_enabled;
  EXPECT_NE(base, runner::spec_fingerprint(spec));
  spec = small_spec();
  spec.fault.bit_error_rate = 1e-4;
  EXPECT_NE(base, runner::spec_fingerprint(spec));
}

TEST(CellKey, IdEncodesEveryComponent) {
  runner::CellKey key;
  key.spec_hash = 0xABCDEF;
  key.seed = 42;
  const auto id = key.id();
  EXPECT_NE(id.find("0000000000abcdef"), std::string::npos);
  EXPECT_NE(id.find("000000000000002a"), std::string::npos);
  EXPECT_NE(id.find(runner::kEngineVersion), std::string::npos);

  auto other = key;
  other.engine = "michican-cell-v999";
  EXPECT_NE(id, other.id());
}

// --------------------------------------------------------------- codec --

TEST(CellCodec, RoundTripsARealExperimentResult) {
  auto cfg = small_campaign();
  const auto res = runner::rerun_cell(cfg, 0, 0);
  const auto bytes = runner::encode_cell(res);
  analysis::ExperimentResult decoded;
  ASSERT_TRUE(runner::decode_cell(bytes, decoded));
  // Re-encoding the decoded result must reproduce the exact bytes — the
  // codec covers every field the aggregation reads, losslessly.
  EXPECT_EQ(bytes, runner::encode_cell(decoded));
  EXPECT_EQ(res.counterattacks, decoded.counterattacks);
  EXPECT_EQ(res.defender_tec, decoded.defender_tec);
  EXPECT_EQ(res.attackers.size(), decoded.attackers.size());
}

TEST(CellCodec, RejectsTruncatedAndGarbageBytes) {
  const auto res = runner::rerun_cell(small_campaign(), 0, 0);
  const auto bytes = runner::encode_cell(res);
  analysis::ExperimentResult out;
  for (const auto cut : {std::size_t{0}, std::size_t{3}, bytes.size() / 2,
                         bytes.size() - 1}) {
    EXPECT_FALSE(runner::decode_cell(bytes.substr(0, cut), out));
  }
  EXPECT_FALSE(runner::decode_cell("not a cell at all", out));
  EXPECT_FALSE(runner::decode_cell(bytes + "trailing", out));
}

TEST(CellCodec, RoundTripsFuzzCells) {
  runner::FuzzCellResult cell;
  cell.kind = conformance::CaseKind::Noisy;
  cell.diverged = true;
  cell.divergence = "wire bit 17 mismatch";
  cell.stats.oracle_checked = true;
  cell.stats.frames_on_wire = 3;
  cell.stats.wire_bits_compared = 321;
  const auto bytes = runner::encode_fuzz_cell(cell);
  runner::FuzzCellResult out;
  ASSERT_TRUE(runner::decode_fuzz_cell(bytes, out));
  EXPECT_EQ(out.kind, cell.kind);
  EXPECT_TRUE(out.diverged);
  EXPECT_EQ(out.divergence, cell.divergence);
  EXPECT_EQ(out.stats.wire_bits_compared, 321u);
  EXPECT_FALSE(runner::decode_fuzz_cell(bytes.substr(0, 8), out));
}

// ---------------------------------------------------- campaign caching --

TEST(CampaignCache, WarmRerunIsByteIdenticalAndAllHits) {
  runner::MemoryStore store;
  auto cfg = small_campaign(&store);

  const auto cold = runner::run_campaign(cfg);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, cold.tasks.size());

  const auto warm = runner::run_campaign(cfg);
  EXPECT_EQ(warm.cache_hits, warm.tasks.size());
  EXPECT_EQ(warm.cache_misses, 0u);
  for (const auto& t : warm.tasks) EXPECT_TRUE(t.cached);

  // Deterministic report section: byte-for-byte equal, tasks included.
  EXPECT_EQ(runner::to_json(cold), runner::to_json(warm));
}

TEST(CampaignCache, NullStoreStillComputesEverything) {
  const auto rep = runner::run_campaign(small_campaign());
  EXPECT_FALSE(rep.cache_enabled);
  EXPECT_EQ(rep.cache_hits, 0u);
  EXPECT_EQ(rep.failed_tasks(), 0u);
}

TEST(CampaignCache, EngineVersionBumpInvalidatesEveryCell) {
  runner::MemoryStore store;
  auto cfg = small_campaign(&store);
  (void)runner::run_campaign(cfg);
  ASSERT_GT(store.stats().stores, 0u);

  // A changed engine string addresses a disjoint key space: every fetch of
  // the planned cells under the new version misses.
  for (const auto& cell : runner::plan_campaign(cfg)) {
    auto bumped = cell.key;
    bumped.engine = "michican-cell-v999";
    EXPECT_FALSE(store.fetch(bumped).has_value());
    EXPECT_TRUE(store.fetch(cell.key).has_value());
  }
}

TEST(CampaignCache, PresetCancelFlagSkipsEveryCell) {
  runner::MemoryStore store;
  auto cfg = small_campaign(&store);
  std::atomic<bool> cancel{true};
  cfg.cancel = &cancel;
  const auto rep = runner::run_campaign(cfg);
  EXPECT_EQ(rep.cells_cancelled, rep.tasks.size());
  EXPECT_EQ(store.stats().stores, 0u);
  for (const auto& t : rep.tasks) {
    EXPECT_FALSE(t.ok);
    EXPECT_EQ(t.error, "cancelled");
  }
}

TEST(CampaignCache, DecodeCorruptEntryIsCountedAndRecomputed) {
  runner::MemoryStore store;
  auto cfg = small_campaign(&store);
  const auto cold = runner::run_campaign(cfg);
  EXPECT_EQ(cold.cache_corrupt, 0u);

  // Overwrite one cached cell with bytes that hash fine at the store layer
  // but fail to decode: the runner must count it corrupt, recompute, and
  // still land on the identical report.
  const auto cells = runner::plan_campaign(cfg);
  ASSERT_FALSE(cells.empty());
  store.store(cells[0].key, "not a cell payload");

  const auto warm = runner::run_campaign(cfg);
  EXPECT_EQ(warm.cache_corrupt, 1u);
  EXPECT_EQ(warm.cache_misses, 1u);  // the corrupt probe is a miss
  EXPECT_EQ(warm.cache_hits, warm.tasks.size() - 1);
  EXPECT_EQ(runner::to_json(cold), runner::to_json(warm));
}

TEST(FuzzCache, WarmRerunIsByteIdenticalAndAllHits) {
  runner::MemoryStore store;
  runner::FuzzConfig cfg;
  cfg.cases = 24;
  cfg.seeds = {0, 4};
  cfg.jobs = 2;
  cfg.cells = &store;

  const auto cold = runner::run_fuzz(cfg);
  EXPECT_EQ(cold.cache_misses, 24u);
  const auto warm = runner::run_fuzz(cfg);
  EXPECT_EQ(warm.cache_hits, 24u);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(runner::to_json(cold, {}), runner::to_json(warm, {}));
}

// ----------------------------------------------------------- DiskStore --

TEST(DiskStore, PersistsAcrossInstances) {
  const auto dir = scratch_dir("persist");
  runner::CellKey key;
  key.spec_hash = 7;
  key.seed = 9;
  {
    serve::DiskStore store{dir};
    store.store(key, "hello cell");
    EXPECT_EQ(store.fetch(key).value_or(""), "hello cell");
  }
  serve::DiskStore reopened{dir};
  EXPECT_EQ(reopened.stats().entries, 1u);
  EXPECT_EQ(reopened.fetch(key).value_or(""), "hello cell");
  fs::remove_all(dir);
}

TEST(DiskStore, TruncatedEntryIsCorruptNotFatal) {
  const auto dir = scratch_dir("trunc");
  serve::DiskStore store{dir};
  runner::CellKey key;
  key.spec_hash = 1;
  store.store(key, std::string(256, 'x'));

  // Truncate the entry file mid-payload: the stored hash can no longer
  // verify, so the fetch must report a miss and discard the entry.
  const auto file = dir / (key.id() + ".cell");
  ASSERT_TRUE(fs::exists(file));
  fs::resize_file(file, fs::file_size(file) / 2);

  EXPECT_FALSE(store.fetch(key).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
  EXPECT_FALSE(fs::exists(file));

  // Recompute-and-restore works after the discard.
  store.store(key, std::string(256, 'x'));
  EXPECT_TRUE(store.fetch(key).has_value());
  fs::remove_all(dir);
}

TEST(DiskStore, FlippedPayloadByteIsCorruptNotFatal) {
  const auto dir = scratch_dir("fliprot");
  serve::DiskStore store{dir};
  runner::CellKey key;
  key.spec_hash = 2;
  store.store(key, "payload-that-will-rot");

  const auto file = dir / (key.id() + ".cell");
  {
    std::fstream f{file, std::ios::in | std::ios::out | std::ios::binary};
    f.seekp(-3, std::ios::end);
    f.put('!');
  }
  EXPECT_FALSE(store.fetch(key).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
  fs::remove_all(dir);
}

TEST(DiskStore, EvictsLeastRecentlyUsedUnderTinyCap) {
  const auto dir = scratch_dir("evict");
  serve::DiskStore store{dir, 250};  // fits two 100-byte payloads, not three
  runner::CellKey a, b, c;
  a.seed = 1;
  b.seed = 2;
  c.seed = 3;
  store.store(a, std::string(100, 'a'));
  store.store(b, std::string(100, 'b'));
  EXPECT_TRUE(store.fetch(a).has_value());  // refresh a: b is now LRU
  store.store(c, std::string(100, 'c'));

  EXPECT_TRUE(store.fetch(a).has_value());
  EXPECT_FALSE(store.fetch(b).has_value());  // evicted
  EXPECT_TRUE(store.fetch(c).has_value());
  const auto s = store.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.bytes, 250u);
  fs::remove_all(dir);
}

TEST(DiskStore, NeverEvictsTheEntryJustStored) {
  const auto dir = scratch_dir("keepnew");
  serve::DiskStore store{dir, 10};  // smaller than any single entry
  runner::CellKey a, b;
  a.seed = 1;
  b.seed = 2;
  store.store(a, std::string(64, 'a'));
  store.store(b, std::string(64, 'b'));
  EXPECT_FALSE(store.fetch(a).has_value());
  EXPECT_TRUE(store.fetch(b).has_value());  // over cap, but kept
  fs::remove_all(dir);
}

TEST(DiskStore, StartupSweepDropsAndCountsTornShortFiles) {
  const auto dir = scratch_dir("sweep");
  {
    serve::DiskStore store{dir};
    runner::CellKey key;
    key.spec_hash = 5;
    store.store(key, "survives the restart");
  }
  // A file too short to hold even a header is a torn write from a crash.
  const auto torn = dir / "torn-entry.cell";
  std::ofstream{torn, std::ios::binary} << "MCST";

  serve::DiskStore reopened{dir};
  const auto s = reopened.stats();
  EXPECT_EQ(s.corrupt, 1u);
  EXPECT_EQ(s.entries, 1u);  // only the valid entry was indexed
  EXPECT_FALSE(fs::exists(torn));
  fs::remove_all(dir);
}

TEST(DiskStore, DrivesAWarmCampaignLikeMemoryStore) {
  const auto dir = scratch_dir("campaign");
  serve::DiskStore store{dir};
  auto cfg = small_campaign(&store);
  const auto cold = runner::run_campaign(cfg);
  const auto warm = runner::run_campaign(cfg);
  EXPECT_EQ(warm.cache_hits, warm.tasks.size());
  EXPECT_EQ(runner::to_json(cold), runner::to_json(warm));
  fs::remove_all(dir);
}

// ------------------------------------------------------- report writes --

TEST(ReportWrite, FailurePropagatesAsFalse) {
  const auto rep = runner::run_campaign(small_campaign());
  EXPECT_FALSE(runner::write_json_file(
      "/nonexistent_michican_dir/report.json", rep));
  // A full device only fails small buffered writes at flush time — the
  // exact bug class the flush-before-check fix covers.
  if (fs::exists("/dev/full")) {
    EXPECT_FALSE(runner::write_json_file("/dev/full", rep));
  }
  const auto ok_path = scratch_dir("report") / "report.json";
  EXPECT_TRUE(runner::write_json_file(ok_path.string(), rep));
  fs::remove_all(ok_path.parent_path());
}

// ---------------------------------------------------------------- wire --

TEST(Wire, FramesRoundTripOverASocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = "{\"op\":\"ping\"}";
  EXPECT_TRUE(serve::send_frame(fds[0], payload));
  EXPECT_TRUE(serve::send_frame(fds[0], ""));  // empty frame is legal
  EXPECT_EQ(serve::recv_frame(fds[1]).value_or("x"), payload);
  EXPECT_EQ(serve::recv_frame(fds[1]).value_or("x"), "");
  ::close(fds[0]);
  EXPECT_FALSE(serve::recv_frame(fds[1]).has_value());  // clean EOF
  ::close(fds[1]);
}

TEST(Wire, RejectsOversizedAndGarbageLengths) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  EXPECT_FALSE(
      serve::send_frame(fds[0], std::string(serve::kMaxFrame + 1, 'x')));
  // A garbage length prefix (0xFFFFFFFF) must be rejected, not allocated.
  const char bad[4] = {'\xFF', '\xFF', '\xFF', '\xFF'};
  ASSERT_EQ(::send(fds[0], bad, 4, 0), 4);
  EXPECT_FALSE(serve::recv_frame(fds[1]).has_value());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Wire, JsonParserHandlesTheProtocolShapes) {
  const auto v = serve::parse_json(
      "{\"op\":\"campaign\",\"scenarios\":[\"1\",\"exp2\"],"
      "\"seeds\":{\"begin\":0,\"end\":18446744073709551615},"
      "\"jobs\":4,\"shrink\":false,\"ratio\":-2.5e3,\"nil\":null,"
      "\"msg\":\"a\\\"b\\\\c\\n\\u0041\"}");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("op")->get_string(), "campaign");
  EXPECT_EQ(v->find("scenarios")->array.size(), 2u);
  EXPECT_EQ(v->find("scenarios")->array[1].get_string(), "exp2");
  // Seeds survive as exact u64 even past a double's 53-bit integer range.
  EXPECT_EQ(v->find("seeds")->find("end")->get_u64(), 18446744073709551615ull);
  EXPECT_EQ(v->find("jobs")->get_u64(), 4u);
  EXPECT_FALSE(v->find("shrink")->get_bool(true));
  EXPECT_DOUBLE_EQ(v->find("ratio")->get_number(), -2500.0);
  EXPECT_EQ(v->find("nil")->kind, serve::JsonValue::Kind::Null);
  EXPECT_EQ(v->find("msg")->get_string(), "a\"b\\c\nA");
  EXPECT_EQ(v->find("absent"), nullptr);
}

TEST(Wire, JsonParserRejectsMalformedInput) {
  EXPECT_FALSE(serve::parse_json("").has_value());
  EXPECT_FALSE(serve::parse_json("{\"a\":1,}").has_value());
  EXPECT_FALSE(serve::parse_json("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(serve::parse_json("{\"a\"}").has_value());
  EXPECT_FALSE(serve::parse_json("\"unterminated").has_value());
  EXPECT_FALSE(serve::parse_json("{'single':1}").has_value());
  EXPECT_FALSE(serve::parse_json("[1,2,").has_value());
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(serve::parse_json(deep).has_value());  // depth-limited
}

TEST(Wire, ExtractObjectCutsVerbatimNestedBytes) {
  const std::string doc =
      "{\"report\":\"{\\\"cache_stats\\\":{\\\"decoy\\\":1}}\","
      "\"cache_stats\":{\"store\":{\"hits\":2},\"wall_ms\":1.5},"
      "\"service\":{\"requests\":3}}";
  // Braces inside the escaped report string must not confuse the cut, and
  // the decoy key inside it must not match before the real one.
  EXPECT_EQ(serve::extract_object(doc, "cache_stats"),
            "{\"store\":{\"hits\":2},\"wall_ms\":1.5}");
  EXPECT_EQ(serve::extract_object(doc, "service"), "{\"requests\":3}");
  EXPECT_EQ(serve::extract_object(doc, "absent"), "");
  EXPECT_EQ(serve::extract_object("{\"a\":1}", "a"), "");  // not an object
  EXPECT_EQ(serve::extract_object("{\"a\":{\"unbalanced\":1}", "a"),
            "{\"unbalanced\":1}");
  EXPECT_EQ(serve::extract_object("{\"a\":{\"torn\":", "a"), "");
}

// ---------------------------------------------------------- end-to-end --

TEST(ServeEndToEnd, ColdThenWarmSubmitIsByteIdentical) {
  const auto dir = scratch_dir("e2e");
  serve::ServerConfig cfg;
  cfg.socket_path = (dir / "serve.sock").string();
  cfg.cache_dir = (dir / "cache").string();
  cfg.jobs = 2;
  std::atomic<bool> stop{false};
  cfg.stop = &stop;
  std::thread daemon{[&cfg] { EXPECT_EQ(serve::run_server(cfg), 0); }};

  const std::string request =
      "{\"schema\":\"michican.serve.v1\",\"op\":\"campaign\","
      "\"scenarios\":[\"4\"],\"seeds\":{\"begin\":0,\"end\":2},\"jobs\":2}";
  std::size_t progress_events = 0;
  const auto cold = serve::submit_request(
      cfg.socket_path, request, 5000,
      [&progress_events](std::size_t, std::size_t) { ++progress_events; });
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.exit_code, 0);
  EXPECT_FALSE(cold.report_json.empty());
  EXPECT_FALSE(cold.table.empty());
  EXPECT_EQ(progress_events, 2u);  // one per cell
  EXPECT_NE(cold.cache_stats_json.find("\"kind\":\"cache_stats\""),
            std::string::npos);
  EXPECT_NE(cold.cache_stats_json.find("\"misses\":2"), std::string::npos);

  const auto warm = serve::submit_request(cfg.socket_path, request, 1000);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.report_json, cold.report_json);  // byte-identical replay
  EXPECT_NE(warm.cache_stats_json.find("\"hits\":2"), std::string::npos);

  // The report the daemon emitted matches a local run of the same grid.
  runner::CampaignConfig local;
  local.specs = {analysis::ScenarioRegistry::built_in().make("4")};
  local.seeds = {0, 2};
  local.jobs = 2;
  EXPECT_EQ(cold.report_json, runner::to_json(runner::run_campaign(local)));

  const auto ping = serve::submit_request(
      cfg.socket_path, "{\"op\":\"ping\"}", 1000);
  EXPECT_TRUE(ping.ok) << ping.error;

  const auto bad = serve::submit_request(
      cfg.socket_path, "{\"op\":\"campaign\",\"scenarios\":[\"no-such\"]}",
      1000);
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("no-such"), std::string::npos);

  const auto down = serve::submit_request(
      cfg.socket_path, "{\"op\":\"shutdown\"}", 1000);
  EXPECT_TRUE(down.ok) << down.error;
  daemon.join();
  EXPECT_FALSE(fs::exists(cfg.socket_path));  // unlinked on exit
  fs::remove_all(dir);
}

TEST(ServeEndToEnd, StatsHealthAndPromExposition) {
  const auto dir = scratch_dir("obs");
  serve::ServerConfig cfg;
  cfg.socket_path = (dir / "serve.sock").string();
  cfg.cache_dir = (dir / "cache").string();
  cfg.jobs = 2;
  std::atomic<bool> stop{false};
  cfg.stop = &stop;
  std::thread daemon{[&cfg] { EXPECT_EQ(serve::run_server(cfg), 0); }};

  const auto run = serve::submit_request(
      cfg.socket_path,
      "{\"op\":\"campaign\",\"scenarios\":[\"4\"],"
      "\"seeds\":{\"begin\":0,\"end\":2},\"jobs\":2}",
      5000);
  ASSERT_TRUE(run.ok) << run.error;

  const auto stats = serve::submit_request(
      cfg.socket_path, "{\"op\":\"stats\"}", 1000);
  ASSERT_TRUE(stats.ok) << stats.error;
  EXPECT_EQ(stats.exit_code, 0);
  // The service snapshot parses and reflects the campaign just served.
  const auto svc = serve::parse_json(stats.service_json);
  ASSERT_TRUE(svc.has_value()) << stats.service_json;
  EXPECT_GE(svc->find("requests")->get_u64(), 1u);
  EXPECT_GT(svc->find("uptime_ms")->get_number(), 0.0);
  ASSERT_NE(svc->find("latency_ms"), nullptr);
  EXPECT_GE(svc->find("latency_ms")->find("count")->get_u64(), 1u);
  EXPECT_NE(svc->find("queue_depth"), nullptr);
  // The metrics dump is a valid registry rendering.
  const auto met = serve::parse_json(stats.metrics_json);
  ASSERT_TRUE(met.has_value()) << stats.metrics_json;
  EXPECT_NE(met->find("histograms")->find("serve.request_ms"), nullptr);
  // Prometheus text names the request counter and the latency histogram.
  EXPECT_NE(stats.prom_text.find("# TYPE michican_serve_requests counter"),
            std::string::npos);
  EXPECT_NE(stats.prom_text.find(
                "michican_serve_request_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(stats.prom_text.find("michican_cache_hits"), std::string::npos);

  const auto health = serve::submit_request(
      cfg.socket_path, "{\"op\":\"health\"}", 1000);
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_TRUE(health.ready);
  EXPECT_EQ(health.exit_code, 0);
  const auto h = serve::parse_json(health.health_json);
  ASSERT_TRUE(h.has_value()) << health.health_json;
  EXPECT_TRUE(h->find("checks")->find("cache_writable")->get_bool(false));
  EXPECT_TRUE(h->find("checks")->find("queue_ok")->get_bool(false));

  (void)serve::submit_request(cfg.socket_path, "{\"op\":\"shutdown\"}", 1000);
  daemon.join();
  fs::remove_all(dir);
}

TEST(ServeEndToEnd, TraceExportSharesOneTraceIdWithSimTracks) {
  const auto dir = scratch_dir("trace");
  serve::ServerConfig cfg;
  cfg.socket_path = (dir / "serve.sock").string();
  cfg.cache_dir = (dir / "cache").string();
  cfg.jobs = 2;
  std::atomic<bool> stop{false};
  cfg.stop = &stop;
  std::thread daemon{[&cfg] { EXPECT_EQ(serve::run_server(cfg), 0); }};

  // Old-client shape: no trace field — the reply must carry no trace
  // either (backward compatibility both ways).
  const std::string plain_req =
      "{\"op\":\"campaign\",\"scenarios\":[\"4\"],"
      "\"seeds\":{\"begin\":0,\"end\":2},\"jobs\":2}";
  const auto plain = serve::submit_request(cfg.socket_path, plain_req, 5000);
  ASSERT_TRUE(plain.ok) << plain.error;
  EXPECT_TRUE(plain.trace_json.empty());

  const std::string traced_req =
      "{\"op\":\"campaign\",\"scenarios\":[\"4\"],"
      "\"seeds\":{\"begin\":0,\"end\":2},\"jobs\":2,"
      "\"trace\":{\"id\":\"00000000deadbeef\",\"export\":true}}";
  const auto traced = serve::submit_request(cfg.socket_path, traced_req, 1000);
  ASSERT_TRUE(traced.ok) << traced.error;
  ASSERT_FALSE(traced.trace_json.empty());
  // Telemetry neutrality: the traced submit replays the plain submit's
  // cached cells byte-identically.
  EXPECT_EQ(traced.report_json, plain.report_json);

  const auto doc = serve::parse_json(traced.trace_json);
  ASSERT_TRUE(doc.has_value()) << traced.trace_json.substr(0, 200);
  bool saw_sim_track = false;     // pid 0: the replayed cell's sim events
  bool saw_service_span = false;  // pid 1: the request's service spans
  bool saw_cell_span = false;
  for (const auto& ev : doc->find("traceEvents")->array) {
    const auto* ph = ev.find("ph");
    if (ph == nullptr || ph->get_string() != "X") continue;
    if (ev.find("pid")->get_u64() == 0) {
      saw_sim_track = true;
      continue;
    }
    saw_service_span = true;
    // Every service span carries the client-chosen trace id.
    EXPECT_EQ(ev.find("args")->find("trace_id")->get_string(),
              "00000000deadbeef");
    if (ev.find("name")->get_string() == "cell.compute" ||
        ev.find("name")->get_string() == "cell.probe") {
      saw_cell_span = true;
    }
  }
  EXPECT_TRUE(saw_sim_track);
  EXPECT_TRUE(saw_service_span);
  EXPECT_TRUE(saw_cell_span);
  for (const auto name : {"request campaign", "parse", "plan", "aggregate",
                          "serialize"}) {
    EXPECT_NE(traced.trace_json.find("\"" + std::string{name} + "\""),
              std::string::npos)
        << name;
  }

  (void)serve::submit_request(cfg.socket_path, "{\"op\":\"shutdown\"}", 1000);
  daemon.join();
  fs::remove_all(dir);
}

TEST(ServeEndToEnd, StopFlagShutsTheDaemonDown) {
  const auto dir = scratch_dir("stop");
  serve::ServerConfig cfg;
  cfg.socket_path = (dir / "serve.sock").string();
  cfg.cache_dir = (dir / "cache").string();
  std::atomic<bool> stop{false};
  cfg.stop = &stop;
  std::thread daemon{[&cfg] { EXPECT_EQ(serve::run_server(cfg), 0); }};
  const auto ping = serve::submit_request(
      cfg.socket_path, "{\"op\":\"ping\"}", 5000);
  EXPECT_TRUE(ping.ok) << ping.error;
  stop.store(true);
  daemon.join();  // the 200 ms poll tick observes the flag
  fs::remove_all(dir);
}

}  // namespace
