// Differential corruption-safety property: whatever dominant-bit glitches
// hit a frame on the wire, a compliant receiver must NEVER deliver a frame
// that differs from the original — errors are acceptable, silent
// corruption is not.  (On a wired-AND bus only recessive->dominant flips
// are physically possible.)
#include <gtest/gtest.h>

#include "can/bitstream.hpp"
#include "can/bus.hpp"
#include "can/controller.hpp"
#include "helpers.hpp"
#include "sim/rng.hpp"

namespace mcan::can {
namespace {

using sim::BitLevel;
using sim::BitTime;

CanFrame random_frame(sim::Rng& rng, bool allow_ext) {
  CanFrame f;
  f.extended = allow_ext && rng.chance(0.3);
  f.id = static_cast<CanId>(
      rng.uniform(0, f.extended ? kMaxExtId : kMaxStdId));
  f.dlc = static_cast<std::uint8_t>(rng.uniform(0, 8));
  for (int i = 0; i < f.dlc; ++i) {
    f.data[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(rng.uniform(0, 255));
  }
  return f;
}

/// Replay `frame` with `flips` random recessive->dominant corruptions and
/// return what the receiver delivered (if anything).
std::vector<CanFrame> corrupted_replay(const CanFrame& frame, int flips,
                                       sim::Rng& rng) {
  auto wire = wire_bits(frame);
  int applied = 0;
  for (int attempt = 0; attempt < 200 && applied < flips; ++attempt) {
    auto& bit = wire[rng.uniform(1, wire.size() - 1)];
    if (bit.level == BitLevel::Recessive) {
      bit.level = BitLevel::Dominant;
      ++applied;
    }
  }
  std::vector<BitLevel> script;
  for (const auto& b : wire) script.push_back(b.level);

  WiredAndBus bus;
  test::ScriptedNode sender{15, std::move(script)};
  BitController rx{"rx"};
  bus.attach(sender);
  rx.attach_to(bus);
  std::vector<CanFrame> delivered;
  rx.set_rx_callback(
      [&](const CanFrame& f, BitTime) { delivered.push_back(f); });
  bus.run(400);
  return delivered;
}

TEST(CorruptionSafety, SingleFlipNeverDeliversDifferentFrame) {
  sim::Rng rng{0xC0FFEE};
  for (int trial = 0; trial < 400; ++trial) {
    const auto frame = random_frame(rng, /*allow_ext=*/true);
    const auto delivered = corrupted_replay(frame, 1, rng);
    for (const auto& d : delivered) {
      ASSERT_EQ(d, frame) << "silent corruption of " << frame.to_string()
                          << " into " << d.to_string();
    }
  }
}

TEST(CorruptionSafety, DoubleFlipNeverDeliversDifferentFrame) {
  sim::Rng rng{0xFACADE};
  for (int trial = 0; trial < 400; ++trial) {
    const auto frame = random_frame(rng, true);
    const auto delivered = corrupted_replay(frame, 2, rng);
    for (const auto& d : delivered) {
      ASSERT_EQ(d, frame) << "silent corruption of " << frame.to_string();
    }
  }
}

TEST(CorruptionSafety, TripleFlipNeverDeliversDifferentFrame) {
  sim::Rng rng{0xBEEF5};
  for (int trial = 0; trial < 400; ++trial) {
    const auto frame = random_frame(rng, true);
    const auto delivered = corrupted_replay(frame, 3, rng);
    for (const auto& d : delivered) {
      ASSERT_EQ(d, frame) << "silent corruption of " << frame.to_string();
    }
  }
}

TEST(CorruptionSafety, UncorruptedReplayAlwaysDelivers) {
  // Sanity for the harness itself: zero flips must deliver exactly once.
  sim::Rng rng{0x5EED5};
  for (int trial = 0; trial < 100; ++trial) {
    const auto frame = random_frame(rng, true);
    const auto delivered = corrupted_replay(frame, 0, rng);
    ASSERT_EQ(delivered.size(), 1u) << frame.to_string();
    EXPECT_EQ(delivered[0], frame);
  }
}

}  // namespace
}  // namespace mcan::can
