// Tests for the analysis layer: statistics, bus-off metering, Table III
// theory, the latency study and the ASCII table renderer.
#include <gtest/gtest.h>

#include "analysis/busoff_meter.hpp"
#include "analysis/latency.hpp"
#include "analysis/table.hpp"
#include "analysis/theory.hpp"
#include "sim/stats.hpp"

namespace mcan::analysis {
namespace {

using sim::EventKind;

TEST(Stats, SummaryOfKnownSample) {
  const auto s = sim::summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, EmptyAndSingleton) {
  const auto empty = sim::summarize({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.mean, 0.0);
  const auto one = sim::summarize({3.5});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 3.5);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
}

TEST(Stats, Percentile) {
  EXPECT_DOUBLE_EQ(sim::percentile({1, 2, 3, 4, 5}, 50), 3.0);
  EXPECT_DOUBLE_EQ(sim::percentile({1, 2, 3, 4, 5}, 0), 1.0);
  EXPECT_DOUBLE_EQ(sim::percentile({1, 2, 3, 4, 5}, 100), 5.0);
  EXPECT_DOUBLE_EQ(sim::percentile({5, 1, 3, 2, 4}, 25), 2.0);  // sorts internally
}

sim::EventLog make_log_with_cycles() {
  sim::EventLog log;
  // Cycle 1: start at 100, 3 attempts, bus-off at 1300.
  log.push({100, "atk", EventKind::FrameTxStart, 0x64, 0, 0, {}});
  log.push({150, "atk", EventKind::FrameTxStart, 0x64, 0, 0, {}});
  log.push({200, "atk", EventKind::FrameTxStart, 0x64, 0, 0, {}});
  log.push({1300, "atk", EventKind::BusOff, 0x64, 0, 256, {}});
  log.push({2800, "atk", EventKind::BusOffRecovered, 0, 0, 0, {}});
  // Cycle 2: start at 3000, bus-off at 4100.
  log.push({3000, "atk", EventKind::FrameTxStart, 0x64, 0, 0, {}});
  log.push({4100, "atk", EventKind::BusOff, 0x64, 0, 256, {}});
  // Unrelated node events must be ignored.
  log.push({5000, "other", EventKind::FrameTxStart, 0x100, 0, 0, {}});
  log.push({5100, "other", EventKind::BusOff, 0x100, 0, 256, {}});
  return log;
}

TEST(BusOffMeter, ExtractsCyclesPerNode) {
  const auto log = make_log_with_cycles();
  const auto cycles = busoff_cycles(log, "atk");
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0].attack_start, 100u);
  EXPECT_EQ(cycles[0].bus_off, 1300u);
  EXPECT_DOUBLE_EQ(cycles[0].duration_bits, 1200.0);
  EXPECT_EQ(cycles[0].retransmissions, 3);
  EXPECT_DOUBLE_EQ(cycles[1].duration_bits, 1100.0);
}

TEST(BusOffMeter, SummaryInMilliseconds) {
  const auto log = make_log_with_cycles();
  const auto s = busoff_summary_ms(log, "atk", sim::BusSpeed{50'000});
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mean, (24.0 + 22.0) / 2.0);
  EXPECT_DOUBLE_EQ(s.max, 24.0);
}

TEST(BusOffMeter, IncompleteCycleIgnored) {
  sim::EventLog log;
  log.push({10, "atk", EventKind::FrameTxStart, 0x64, 0, 0, {}});
  EXPECT_TRUE(busoff_cycles(log, "atk").empty());
}

TEST(Theory, TableIIIFormulas) {
  namespace th = theory;
  EXPECT_DOUBLE_EQ(th::isolated_total_bits(), 1248.0);
  EXPECT_DOUBLE_EQ(th::t_active(1, 100.0), 135.0);
  EXPECT_DOUBLE_EQ(th::t_passive(1, 1, 100.0), 243.0);
  // Restbus form with one interruption per phase on the first attempt.
  EXPECT_DOUBLE_EQ(th::restbus_total_bits({1}, {1}, 100.0),
                   1248.0 + 200.0);
  // LP attacker interrupted once in each active attempt by the HP rival of
  // 52 bits: 16 * 52 extra.
  EXPECT_DOUBLE_EQ(
      th::exp5_lp_total_bits(std::vector<int>(16, 1), {}, 52.0),
      1248.0 + 16 * 52.0);
}

TEST(Theory, DeadlineBudget) {
  EXPECT_DOUBLE_EQ(theory::deadline_budget_bits(10.0, 500e3), 5000.0);
  EXPECT_DOUBLE_EQ(theory::deadline_budget_bits(100.0, 50e3), 5000.0);
}

TEST(LatencyStudy, SmallRunIsExactAndComplete) {
  LatencyStudyConfig cfg;
  cfg.num_fsms = 300;
  cfg.verify_fsms = 50;
  const auto res = run_latency_study(cfg);
  EXPECT_EQ(res.fsms_built, 300u);
  EXPECT_DOUBLE_EQ(res.detection_rate, 1.0);   // the paper's 100 %
  EXPECT_DOUBLE_EQ(res.false_positive_rate, 0.0);
  EXPECT_GT(res.mean_detection_bit, 4.0);
  EXPECT_LE(res.mean_detection_bit, 11.0);
  EXPECT_LE(res.max_depth_seen, 11);
}

TEST(LatencyStudy, DepthGrowsWithEcuCount) {
  LatencyStudyConfig small;
  small.num_fsms = 200;
  small.min_ecus = small.max_ecus = 10;
  small.verify_fsms = 0;
  LatencyStudyConfig large = small;
  large.min_ecus = large.max_ecus = 300;
  EXPECT_LT(run_latency_study(small).mean_detection_bit,
            run_latency_study(large).mean_detection_bit);
}

TEST(LatencyStudy, LatencyConversion) {
  EXPECT_DOUBLE_EQ(detection_latency_us(9.0, 500e3), 18.0);
  EXPECT_DOUBLE_EQ(detection_latency_us(9.0, 50e3), 180.0);
}

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable t{{"a", "bbbb"}};
  t.add_row({"xxxxx", "y"});
  const auto s = t.to_string("Title");
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| xxxxx | y    |"), std::string::npos);
  EXPECT_NE(s.find("| a     | bbbb |"), std::string::npos);
}

TEST(AsciiTable, PadsShortRows) {
  AsciiTable t{{"a", "b", "c"}};
  t.add_row({"1"});
  EXPECT_NE(t.to_string().find("| 1 |"), std::string::npos);
}

TEST(AsciiTable, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_hex(0x173), "0x173");
  EXPECT_EQ(fmt_pct(0.257, 1), "25.7%");
}

}  // namespace
}  // namespace mcan::analysis
