// Service-observability layer: structured JSONL logging (level filter,
// flush-per-line, size-capped rotation), request tracing (trace ids, span
// scopes, Chrome-trace export and splicing), histogram quantiles, the
// Prometheus text exposition — and the invariant the whole layer hangs on:
// attaching telemetry never changes a report's deterministic bytes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "analysis/scenarios.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/prom.hpp"
#include "obs/trace_context.hpp"
#include "runner/campaign.hpp"
#include "runner/cli.hpp"
#include "runner/fuzz.hpp"
#include "runner/report.hpp"
#include "serve/wire.hpp"

namespace {

using namespace mcan;
namespace fs = std::filesystem;

fs::path scratch_dir(const std::string& tag) {
  const auto dir = fs::temp_directory_path() /
                   ("michican_obs_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::string> read_lines(const fs::path& p) {
  std::ifstream in{p};
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ----------------------------------------------------------------- log --

TEST(Log, WritesOneParsableJsonObjectPerLine) {
  const auto dir = scratch_dir("jsonl");
  const auto path = (dir / "serve.jsonl").string();
  {
    obs::Log log{{obs::LogLevel::Debug, path, 0}};
    log.info("listening", "\"socket\":\"/tmp/x.sock\",\"entries\":3");
    log.debug("progress", "\"done\":1,\"total\":2");
    log.error("request_failed");
    EXPECT_EQ(log.lines_written(), 3u);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  for (const auto& line : lines) {
    const auto v = serve::parse_json(line);
    ASSERT_TRUE(v.has_value()) << line;
    EXPECT_NE(v->find("ts"), nullptr);
    EXPECT_NE(v->find("mono_us"), nullptr);
    EXPECT_NE(v->find("level"), nullptr);
    EXPECT_NE(v->find("event"), nullptr);
  }
  const auto first = serve::parse_json(lines[0]);
  EXPECT_EQ(first->find("event")->get_string(), "listening");
  EXPECT_EQ(first->find("socket")->get_string(), "/tmp/x.sock");
  EXPECT_EQ(first->find("entries")->get_u64(), 3u);
  // Wall timestamp is ISO-8601 UTC with milliseconds.
  const std::string ts{first->find("ts")->get_string()};
  EXPECT_EQ(ts.size(), 24u);
  EXPECT_EQ(ts.back(), 'Z');
  EXPECT_EQ(ts[10], 'T');
  fs::remove_all(dir);
}

TEST(Log, LevelFilterDropsBelowThreshold) {
  const auto dir = scratch_dir("level");
  const auto path = (dir / "log.jsonl").string();
  {
    obs::Log log{{obs::LogLevel::Warn, path, 0}};
    EXPECT_FALSE(log.enabled(obs::LogLevel::Debug));
    EXPECT_FALSE(log.enabled(obs::LogLevel::Info));
    EXPECT_TRUE(log.enabled(obs::LogLevel::Warn));
    EXPECT_TRUE(log.enabled(obs::LogLevel::Fatal));
    log.debug("dropped");
    log.info("dropped");
    log.warn("kept");
    log.fatal("kept");
    EXPECT_EQ(log.lines_written(), 2u);
  }
  EXPECT_EQ(read_lines(path).size(), 2u);
  fs::remove_all(dir);
}

TEST(Log, LinesAreVisibleBeforeClose) {
  // The serve-log satellite fix: lines must hit the file as they are
  // written, not at destructor time — a crashed daemon keeps its tail.
  const auto dir = scratch_dir("flush");
  const auto path = (dir / "log.jsonl").string();
  obs::Log log{{obs::LogLevel::Info, path, 0}};
  log.info("first");
  EXPECT_EQ(read_lines(path).size(), 1u);  // log still open
  log.fatal("last");                       // also fsync()ed
  EXPECT_EQ(read_lines(path).size(), 2u);
  fs::remove_all(dir);
}

TEST(Log, RotatesToBoundedTwoFileFootprint) {
  const auto dir = scratch_dir("rotate");
  const auto path = (dir / "log.jsonl").string();
  obs::Log log{{obs::LogLevel::Info, path, 512}};
  for (int i = 0; i < 64; ++i) {
    log.info("filler", "\"i\":" + std::to_string(i));
  }
  EXPECT_GT(log.rotations(), 0u);
  ASSERT_TRUE(fs::exists(path));
  ASSERT_TRUE(fs::exists(path + ".1"));
  // Only ever two files, each bounded by roughly the cap plus one line.
  EXPECT_LT(fs::file_size(path), 1024u);
  EXPECT_LT(fs::file_size(path + ".1"), 1024u);
  // Every surviving line is still valid JSONL (rotation never tears one).
  for (const auto& line : read_lines(path + ".1")) {
    EXPECT_TRUE(serve::parse_json(line).has_value()) << line;
  }
  fs::remove_all(dir);
}

TEST(Log, EscapesEventText) {
  const auto dir = scratch_dir("escape");
  const auto path = (dir / "log.jsonl").string();
  {
    obs::Log log{{obs::LogLevel::Info, path, 0}};
    log.info("quote\"back\\slash\nline");
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  const auto v = serve::parse_json(lines[0]);
  ASSERT_TRUE(v.has_value()) << lines[0];
  EXPECT_EQ(v->find("event")->get_string(), "quote\"back\\slash\nline");
  fs::remove_all(dir);
}

TEST(Log, ThrowsOnUnopenablePathAndParsesLevels) {
  EXPECT_THROW(obs::Log({obs::LogLevel::Info,
                         "/nonexistent_michican_dir/log.jsonl", 0}),
               std::runtime_error);
  for (const auto level :
       {obs::LogLevel::Debug, obs::LogLevel::Info, obs::LogLevel::Warn,
        obs::LogLevel::Error, obs::LogLevel::Fatal}) {
    const auto parsed = obs::parse_log_level(obs::to_string(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(obs::parse_log_level("verbose").has_value());
  EXPECT_FALSE(obs::parse_log_level("").has_value());
  EXPECT_FALSE(obs::parse_log_level("INFO").has_value());  // case-sensitive
}

// --------------------------------------------------------------- trace --

TEST(TraceId, BuilderIsDeterministicAndOrderSensitive) {
  obs::TraceIdBuilder a;
  a.mix("campaign");
  a.mix_u64(0);
  a.mix_u64(32);
  obs::TraceIdBuilder b;
  b.mix("campaign");
  b.mix_u64(0);
  b.mix_u64(32);
  EXPECT_EQ(a.id(), b.id());

  obs::TraceIdBuilder c;
  c.mix_u64(0);
  c.mix("campaign");
  c.mix_u64(32);
  EXPECT_NE(a.id(), c.id());

  // Length framing: ("ab","c") and ("a","bc") must not collide.
  obs::TraceIdBuilder d, e;
  d.mix("ab");
  d.mix("c");
  e.mix("a");
  e.mix("bc");
  EXPECT_NE(d.id(), e.id());
}

TEST(TraceId, Hex16RoundTrips) {
  EXPECT_EQ(obs::hex16(0xDEADBEEFull), "00000000deadbeef");
  EXPECT_EQ(obs::parse_hex16("00000000deadbeef").value_or(0), 0xDEADBEEFull);
  EXPECT_EQ(obs::parse_hex16(obs::hex16(0)).value_or(1), 0u);
  for (const std::uint64_t v : {1ull, 0x123456789ABCDEFull, ~0ull}) {
    EXPECT_EQ(obs::parse_hex16(obs::hex16(v)).value_or(0), v);
  }
  EXPECT_FALSE(obs::parse_hex16("deadbeef").has_value());  // too short
  EXPECT_FALSE(obs::parse_hex16("00000000deadbeefX").has_value());
  EXPECT_FALSE(obs::parse_hex16("0000000gdeadbeef").has_value());
  EXPECT_FALSE(obs::parse_hex16("").has_value());
}

TEST(SpanCollector, ScopesRecordNestedSpansWithParentLinkage) {
  obs::SpanCollector spans{0xABCDull};
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    obs::SpanCollector::Scope outer{&spans, "plan", "service"};
    outer_id = outer.id();
    {
      obs::SpanCollector::Scope inner{&spans, "cell.compute", "cell",
                                      outer.id()};
      inner.set_track(2);
      inner.set_args("\"spec\":1,\"seed\":7");
      inner_id = inner.id();
    }
  }
  ASSERT_EQ(spans.span_count(), 2u);
  // Inner scope closed first, so it records first.
  const auto recorded = spans.spans();  // snapshot copy
  const auto& inner = recorded[0];
  const auto& outer = recorded[1];
  EXPECT_EQ(inner.id, inner_id);
  EXPECT_EQ(inner.parent, outer_id);
  EXPECT_EQ(inner.name, "cell.compute");
  EXPECT_EQ(inner.track, 2);
  EXPECT_EQ(outer.id, outer_id);
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_GE(outer.dur_us, inner.dur_us);
}

TEST(SpanCollector, NullCollectorScopeIsANoOp) {
  obs::SpanCollector::Scope scope{nullptr, "plan", "service"};
  EXPECT_EQ(scope.id(), 0u);
  scope.set_track(3);
  scope.set_args("\"k\":1");  // must not crash
}

TEST(SpanCollector, ChromeTraceCarriesOneTraceIdAcrossEveryEvent) {
  obs::SpanCollector spans{0xDEADBEEFull};
  {
    obs::SpanCollector::Scope root{&spans, "request campaign", "service"};
    obs::SpanCollector::Scope cell{&spans, "cell.compute", "cell", root.id()};
    cell.set_track(1);
  }
  const auto doc = spans.to_chrome_trace();
  const auto v = serve::parse_json(doc);
  ASSERT_TRUE(v.has_value()) << doc;
  EXPECT_EQ(v->find("otherData")->find("trace_id")->get_string(),
            "00000000deadbeef");
  const auto* events = v->find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t complete_events = 0;
  for (const auto& ev : events->array) {
    if (ev.find("ph")->get_string() != "X") continue;
    ++complete_events;
    EXPECT_EQ(ev.find("args")->find("trace_id")->get_string(),
              "00000000deadbeef");
  }
  EXPECT_EQ(complete_events, 2u);
  // Track metadata names the service track and the numbered cell track.
  EXPECT_NE(doc.find("\"service\""), std::string::npos);
  EXPECT_NE(doc.find("\"cell 0\""), std::string::npos);
}

TEST(SpanCollector, SpliceInsertsServiceSpansAboveSimTracks) {
  obs::SpanCollector sim_side{0x1ull};
  { obs::SpanCollector::Scope s{&sim_side, "bit", "sim"}; }
  // The sim trace document and the marker the splice targets come from the
  // same envelope shape every trace writer in the repo emits.
  const auto sim_doc = sim_side.to_chrome_trace(0);

  obs::SpanCollector service{0x2ull};
  { obs::SpanCollector::Scope s{&service, "request", "service"}; }
  const auto spliced =
      obs::splice_into_chrome_trace(sim_doc, service.to_chrome_events(1));
  const auto v = serve::parse_json(spliced);
  ASSERT_TRUE(v.has_value()) << spliced;
  bool saw_pid0 = false;
  bool saw_pid1 = false;
  for (const auto& ev : v->find("traceEvents")->array) {
    const auto pid = ev.find("pid")->get_u64();
    saw_pid0 |= pid == 0;
    saw_pid1 |= pid == 1;
  }
  EXPECT_TRUE(saw_pid0);
  EXPECT_TRUE(saw_pid1);

  // No events or no marker: the document passes through untouched.
  EXPECT_EQ(obs::splice_into_chrome_trace(sim_doc, ""), sim_doc);
  EXPECT_EQ(obs::splice_into_chrome_trace("{\"no\":\"marker\"}", "x"),
            "{\"no\":\"marker\"}");
}

// ------------------------------------------------------------ quantile --

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  obs::Histogram h;
  h.bounds = {10.0, 20.0, 40.0};
  h.buckets.assign(4, 0);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 10; ++i) h.observe(5.0);    // bucket [0,10]
  for (int i = 0; i < 10; ++i) h.observe(15.0);   // bucket (10,20]
  EXPECT_NEAR(h.quantile(0.25), 5.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.5), 10.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.75), 15.0, 1e-9);
  EXPECT_NEAR(h.quantile(1.0), 20.0, 1e-9);
  // Overflow samples clamp to the last bound — the histogram cannot see
  // past its top bucket.
  h.observe(1e9);
  EXPECT_NEAR(h.quantile(1.0), 40.0, 1e-9);
}

// ---------------------------------------------------------------- prom --

TEST(Prom, MetricNamesAreSanitized) {
  EXPECT_EQ(obs::prom_metric_name("serve.request_ms"), "serve_request_ms");
  EXPECT_EQ(obs::prom_metric_name("serve.request_ms", "michican"),
            "michican_serve_request_ms");
  EXPECT_EQ(obs::prom_metric_name("bus-load %"), "bus_load__");
  EXPECT_EQ(obs::prom_metric_name("7seg"), "_7seg");  // leading digit
}

TEST(Prom, LabelValuesAreEscaped) {
  EXPECT_EQ(obs::prom_escape_label_value("plain"), "plain");
  EXPECT_EQ(obs::prom_escape_label_value("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd");
}

TEST(Prom, RenderEmitsTypedSamplesWithLabels) {
  obs::Registry reg;
  reg.counter("serve.requests") = 7;
  reg.gauge("serve.queue_depth") = 3;
  const auto text = obs::prom_render(
      reg, "michican", {{"socket", "/tmp/a\"b.sock"}});
  EXPECT_NE(text.find("# TYPE michican_serve_requests counter\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("michican_serve_requests{socket=\"/tmp/a\\\"b.sock\"} 7\n"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE michican_serve_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("michican_serve_queue_depth{socket=\"/tmp/a\\\"b.sock\"} 3\n"),
      std::string::npos);
  EXPECT_TRUE(obs::prom_render(obs::Registry{}).empty());
}

TEST(Prom, HistogramBucketsAreCumulativeAndEndAtInf) {
  obs::Registry reg;
  auto& h = reg.histogram("serve.request_ms", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(5000.0);  // overflow
  const auto text = obs::prom_render(reg, "michican");
  EXPECT_NE(text.find("# TYPE michican_serve_request_ms histogram\n"),
            std::string::npos);

  // Parse the bucket series back out and check cumulative monotonicity.
  std::istringstream in{text};
  std::string line;
  std::vector<double> cumulative;
  double count = -1;
  double inf_bucket = -1;
  while (std::getline(in, line)) {
    if (line.rfind("michican_serve_request_ms_bucket{le=\"+Inf\"}", 0) == 0) {
      inf_bucket = std::stod(line.substr(line.rfind(' ')));
    } else if (line.rfind("michican_serve_request_ms_bucket", 0) == 0) {
      cumulative.push_back(std::stod(line.substr(line.rfind(' '))));
    } else if (line.rfind("michican_serve_request_ms_count", 0) == 0) {
      count = std::stod(line.substr(line.rfind(' ')));
    }
  }
  ASSERT_EQ(cumulative.size(), 3u);  // one per finite bound
  EXPECT_EQ(cumulative[0], 1);
  EXPECT_EQ(cumulative[1], 3);
  EXPECT_EQ(cumulative[2], 4);
  for (std::size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]);
  }
  EXPECT_EQ(inf_bucket, 5);
  EXPECT_EQ(count, 5);  // +Inf bucket == _count, the promtool invariant
  EXPECT_NE(text.find("michican_serve_request_ms_sum"), std::string::npos);
}

// ------------------------------------------------- telemetry neutrality --

analysis::ExperimentSpec tiny_spec() {
  auto spec = analysis::ScenarioRegistry::built_in().make("4");
  spec.duration = sim::Millis{200};
  return spec;
}

TEST(TelemetryNeutrality, CampaignReportBytesIgnoreSpansAndLogging) {
  runner::CampaignConfig plain;
  plain.specs = {tiny_spec()};
  plain.seeds = {0, 2};
  plain.jobs = 2;
  const auto baseline = runner::to_json(runner::run_campaign(plain));

  const auto dir = scratch_dir("neutral");
  obs::Log log{{obs::LogLevel::Debug, (dir / "log.jsonl").string(), 0}};
  obs::SpanCollector spans{0x5EEDull};
  auto traced = plain;
  traced.spans = &spans;
  traced.progress = runner::log_progress(log);
  const auto rep = runner::run_campaign(traced);

  EXPECT_EQ(runner::to_json(rep), baseline);  // byte-identical
  EXPECT_GT(spans.span_count(), 0u);          // telemetry actually ran
  EXPECT_GT(log.lines_written(), 0u);
  fs::remove_all(dir);
}

TEST(TelemetryNeutrality, FuzzReportBytesIgnoreSpans) {
  runner::FuzzConfig plain;
  plain.cases = 8;
  plain.seeds = {0, 2};
  plain.jobs = 2;
  const auto baseline = runner::to_json(runner::run_fuzz(plain), {});

  obs::SpanCollector spans{0xF00Dull};
  auto traced = plain;
  traced.spans = &spans;
  EXPECT_EQ(runner::to_json(runner::run_fuzz(traced), {}), baseline);
  EXPECT_GT(spans.span_count(), 0u);
}

}  // namespace
