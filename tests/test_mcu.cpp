// Unit tests for the MCU substrate: pin multiplexing, software bit timing
// (Sec. IV-C) and the CPU cycle model (Sec. V-D).
#include <gtest/gtest.h>

#include "mcu/bit_timer.hpp"
#include "mcu/pinmux.hpp"
#include "mcu/profile.hpp"

namespace mcan::mcu {
namespace {

using sim::BitLevel;

TEST(PioController, TxMuxDisabledMeansRecessiveContribution) {
  PioController pio;
  EXPECT_EQ(pio.tx_contribution(), BitLevel::Recessive);
  pio.write_tx(BitLevel::Dominant);  // ignored: mux disabled
  EXPECT_EQ(pio.tx_contribution(), BitLevel::Recessive);
}

TEST(PioController, TxMuxEnablesDirectDrive) {
  PioController pio;
  pio.enable_tx_mux();
  pio.write_tx(BitLevel::Dominant);
  EXPECT_EQ(pio.tx_contribution(), BitLevel::Dominant);
  pio.disable_tx_mux();
  EXPECT_EQ(pio.tx_contribution(), BitLevel::Recessive);
}

TEST(PioController, DisableClearsDrive) {
  PioController pio;
  pio.enable_tx_mux();
  pio.write_tx(BitLevel::Dominant);
  pio.disable_tx_mux();
  pio.enable_tx_mux();  // re-enabling must not resurrect the old level
  EXPECT_EQ(pio.tx_contribution(), BitLevel::Recessive);
}

TEST(PioController, RxLatchAndRegisterRead) {
  PioController pio;
  pio.enable_rx_tap();
  pio.latch_rx(BitLevel::Dominant);
  EXPECT_EQ(pio.read_rx(), BitLevel::Dominant);
  pio.latch_rx(BitLevel::Recessive);
  EXPECT_EQ(pio.read_rx(), BitLevel::Recessive);
}

TEST(PioController, TogglesAreCounted) {
  PioController pio;
  pio.enable_tx_mux();
  pio.disable_tx_mux();
  pio.enable_tx_mux();
  pio.enable_tx_mux();  // idempotent, not a toggle
  EXPECT_EQ(pio.tx_mux_toggles(), 3u);
}

TEST(BitTimer, PerfectClockSamplesAtSamplePoint) {
  TimingConfig cfg;
  cfg.drift_ppm = 0;
  cfg.jitter_us = 0;
  cfg.sync_latency_us = 0.15;
  cfg.fudge_factor_us = 0.15;  // fully compensated
  const BitTimer t{cfg};
  for (int k = 1; k <= 200; ++k) {
    EXPECT_NEAR(t.sample_offset_within_bit(k), cfg.sample_point, 1e-9);
  }
}

TEST(BitTimer, FudgeFactorCompensatesSyncLatency) {
  TimingConfig with;
  with.drift_ppm = 0;
  with.sync_latency_us = 0.4;
  with.fudge_factor_us = 0.4;
  TimingConfig without = with;
  without.fudge_factor_us = 0.0;
  EXPECT_NEAR(BitTimer{with}.sample_offset_within_bit(1), 0.70, 1e-9);
  EXPECT_NEAR(BitTimer{without}.sample_offset_within_bit(1), 0.90, 1e-9);
}

TEST(BitTimer, DriftAccumulatesLinearly) {
  TimingConfig cfg;
  cfg.drift_ppm = 1000;  // 0.1 %
  cfg.jitter_us = 0;
  const BitTimer t{cfg};
  const double off1 = t.sample_offset_within_bit(1);
  const double off101 = t.sample_offset_within_bit(101);
  // 100 bits of 0.1% drift move the sample point by ~0.1 bit.
  EXPECT_NEAR(off101 - off1, 0.1, 0.01);
}

TEST(BitTimer, MaxSafeBitsShrinksWithDrift) {
  TimingConfig slow;
  slow.drift_ppm = 100;
  TimingConfig fast;
  fast.drift_ppm = 2000;
  EXPECT_GT(BitTimer{slow}.max_safe_bits(), BitTimer{fast}.max_safe_bits());
  // A crystal-grade 100 ppm clock easily covers a whole frame after one
  // hard sync (the design argument of Sec. IV-C).
  EXPECT_GE(BitTimer{slow}.max_safe_bits(), 130);
}

TEST(BitTimer, JitterNarrowsTheSafeWindow) {
  TimingConfig quiet;
  quiet.drift_ppm = 1000;
  quiet.jitter_us = 0.0;
  TimingConfig noisy = quiet;
  noisy.jitter_us = 0.3;
  EXPECT_GE(BitTimer{quiet}.max_safe_bits(), BitTimer{noisy}.max_safe_bits());
}

TEST(McuProfile, HandlerTimeScalesInverselyWithClock) {
  auto due = arduino_due();
  auto s32k = nxp_s32k144();
  const double t_due = handler_time_us(due, 80, 200, true);
  const double t_s32k = handler_time_us(s32k, 80, 200, true);
  EXPECT_GT(t_due, t_s32k);
}

TEST(McuProfile, UtilizationScalesLinearlyWithBusSpeed) {
  const auto due = arduino_due();
  const double u125 = utilization(due, 80, 200, true, 125e3);
  const double u250 = utilization(due, 80, 200, true, 250e3);
  EXPECT_NEAR(u250 / u125, 2.0, 1e-9);
}

TEST(McuProfile, CalibrationAnchorsFromPaper) {
  // Sec. V-D anchors, +-15 % tolerance on the model.
  const HandlerPathOps ops;
  const auto due_load =
      cpu_load(arduino_due(), ops, 200, 10.0, 125.0, 0.4, 125e3);
  EXPECT_NEAR(due_load.active_load, 0.40, 0.06);

  const auto s32k_load =
      cpu_load(nxp_s32k144(), ops, 200, 10.0, 125.0, 0.4, 500e3);
  EXPECT_NEAR(s32k_load.active_load, 0.44, 0.07);
}

TEST(McuProfile, LargerFsmCostsMore) {
  const HandlerPathOps ops;
  const auto small = cpu_load(arduino_due(), ops, 11, 2.0, 125.0, 0.4, 125e3);
  const auto large = cpu_load(arduino_due(), ops, 500, 10.0, 125.0, 0.4, 125e3);
  EXPECT_GT(large.active_load, small.active_load);
}

TEST(McuProfile, IdleLoadBelowActiveLoad) {
  const HandlerPathOps ops;
  const auto l = cpu_load(arduino_due(), ops, 200, 10.0, 125.0, 0.4, 125e3);
  EXPECT_LT(l.idle_load, l.active_load);
  EXPECT_GT(l.combined_load, l.idle_load);
  EXPECT_LT(l.combined_load, l.active_load);
}

TEST(McuProfile, AllPresetsAreDistinctAndComplete) {
  const auto& all = all_profiles();
  ASSERT_EQ(all.size(), 4u);
  for (const auto& p : all) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.clock_hz, 0.0);
    EXPECT_GT(p.max_bus_speed, 0.0);
  }
  // The Due is the only profile not qualified for 1 Mbit/s (Sec. VI-B).
  EXPECT_LT(all[0].max_bus_speed, 1e6);
  EXPECT_GE(all[1].max_bus_speed, 1e6);
}

}  // namespace
}  // namespace mcan::mcu
