// Integration tests of the full MichiCAN defense pipeline: synchronization,
// per-bit detection, counterattack, and bus-off of the attacker — the
// paper's core claims (Secs. IV and V).
#include "core/michican_node.hpp"

#include <gtest/gtest.h>

#include "attack/attacker.hpp"
#include "can/bus.hpp"
#include "can/periodic.hpp"
#include "sim/rng.hpp"

namespace mcan::core {
namespace {

using attack::Attacker;
using sim::BitLevel;
using sim::BitTime;
using sim::EventKind;

const IvnConfig kIvn{{0x100, 0x173, 0x2A0, 0x350}};

MichiCanNodeConfig defender_cfg(can::CanId own = 0x173) {
  MichiCanNodeConfig cfg;
  cfg.own_id = own;
  return cfg;
}

TEST(MichiCanNode, BenignTrafficPassesUntouched) {
  can::WiredAndBus bus;
  MichiCanNode def{"defender", kIvn, defender_cfg()};
  def.attach_to(bus);
  can::BitController peer{"peer"};
  peer.attach_to(bus);

  int delivered = 0;
  def.controller().set_rx_callback(
      [&](const can::CanFrame&, BitTime) { ++delivered; });

  for (int i = 0; i < 10; ++i) {
    peer.enqueue(can::CanFrame::make(0x2A0, {0x01, 0x02}));
  }
  bus.run(3000);

  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(def.monitor().stats().counterattacks, 0u);
  EXPECT_EQ(peer.tec(), 0);
  EXPECT_EQ(bus.log().count(EventKind::AttackDetected), 0u);
}

TEST(MichiCanNode, SpoofedOwnIdIsDetectedAndAttackerBusedOff) {
  can::WiredAndBus bus;
  MichiCanNode def{"defender", kIvn, defender_cfg()};
  def.attach_to(bus);
  auto cfg = Attacker::spoof(0x173);
  cfg.persistent = false;
  Attacker atk{"attacker", cfg};
  atk.attach_to(bus);

  bus.run(4000);

  EXPECT_TRUE(atk.node().is_bus_off());
  EXPECT_GE(def.monitor().stats().counterattacks, 31u);
  // Paper Sec. IV-E: the defender never transmits a frame during the
  // counterattack, so its TEC is untouched.
  EXPECT_EQ(def.controller().tec(), 0);
  // 32 transmission attempts (1 original + 31 retransmissions).
  EXPECT_EQ(bus.log().count(EventKind::FrameTxStart, "attacker"), 32u);
}

TEST(MichiCanNode, DosAttackLowIdBusedOff) {
  can::WiredAndBus bus;
  MichiCanNode def{"defender", kIvn, defender_cfg()};
  def.attach_to(bus);
  auto cfg = Attacker::traditional_dos();  // ID 0x000
  cfg.persistent = false;
  Attacker atk{"attacker", cfg};
  atk.attach_to(bus);

  bus.run(4000);
  EXPECT_TRUE(atk.node().is_bus_off());
  // ID 0x000 differs from every legitimate prefix early: detection well
  // before bit 11.
  const auto* det = bus.log().first(EventKind::AttackDetected);
  ASSERT_NE(det, nullptr);
  EXPECT_LE(det->a, 11);
  EXPECT_GE(det->a, 1);
}

TEST(MichiCanNode, MiscellaneousIdAboveHighestIsIgnored) {
  // Def. IV.3: IDs above ECU_N are harmless and must NOT be attacked.
  can::WiredAndBus bus;
  MichiCanNode def{"defender", kIvn, defender_cfg()};
  def.attach_to(bus);
  auto cfg = Attacker::miscellaneous(0x700);  // > 0x350
  cfg.period_bits = 300;
  Attacker atk{"attacker", cfg};
  atk.attach_to(bus);

  bus.run(4000);
  EXPECT_FALSE(atk.node().is_bus_off());
  EXPECT_EQ(atk.node().tec(), 0);
  EXPECT_EQ(def.monitor().stats().counterattacks, 0u);
}

TEST(MichiCanNode, LegitimatePeerIdNotAttacked) {
  // 0x100 < 0x173 is another ECU's legitimate ID: undecidable for us.
  can::WiredAndBus bus;
  MichiCanNode def{"defender", kIvn, defender_cfg()};
  def.attach_to(bus);
  can::BitController peer{"peer"};
  peer.attach_to(bus);
  for (int i = 0; i < 5; ++i) {
    peer.enqueue(can::CanFrame::make(0x100, {0xAA}));
  }
  bus.run(2000);
  EXPECT_EQ(peer.stats().frames_sent, 5u);
  EXPECT_EQ(peer.tec(), 0);
  EXPECT_EQ(def.monitor().stats().counterattacks, 0u);
}

TEST(MichiCanNode, OwnTransmissionIsNotSelfAttacked) {
  can::WiredAndBus bus;
  MichiCanNode def{"defender", kIvn, defender_cfg()};
  def.attach_to(bus);
  can::BitController peer{"peer"};  // provides the ACK
  peer.attach_to(bus);

  for (int i = 0; i < 8; ++i) {
    def.controller().enqueue(can::CanFrame::make(0x173, {0x42}));
  }
  bus.run(3000);

  EXPECT_EQ(def.controller().stats().frames_sent, 8u);
  EXPECT_EQ(def.controller().tec(), 0);
  EXPECT_EQ(def.monitor().stats().counterattacks, 0u);
  EXPECT_EQ(def.monitor().stats().suppressed_self, 8u);
}

TEST(MichiCanNode, DetectionOnlyModeRaisesNoCounterattack) {
  can::WiredAndBus bus;
  auto cfg = defender_cfg();
  cfg.monitor.prevention_enabled = false;
  MichiCanNode def{"defender", kIvn, cfg};
  def.attach_to(bus);
  auto acfg = Attacker::targeted_dos(0x050);
  acfg.period_bits = 400;
  Attacker atk{"attacker", acfg};
  atk.attach_to(bus);

  bus.run(4000);
  EXPECT_FALSE(atk.node().is_bus_off());
  EXPECT_GT(def.monitor().stats().attacks_detected, 0u);
  EXPECT_EQ(def.monitor().stats().counterattacks, 0u);
  // Frames deliver normally; the defender ACKs them (it is a receiver).
  EXPECT_GT(atk.node().stats().frames_sent, 0u);
}

TEST(MichiCanNode, DefenseDisabledAttackSucceeds) {
  // Sanity baseline: without MichiCAN the DoS flood simply occupies the bus.
  can::WiredAndBus bus;
  auto cfg = defender_cfg();
  cfg.defense_enabled = false;
  MichiCanNode def{"defender", kIvn, cfg};
  def.attach_to(bus);
  Attacker atk{"attacker", Attacker::traditional_dos()};
  atk.attach_to(bus);

  // Defender's own periodic message now competes with the flood.
  can::attach_periodic(def.controller(), can::CanFrame::make(0x173, {0x01}),
                       500.0);
  bus.run(10'000);

  EXPECT_FALSE(atk.node().is_bus_off());
  EXPECT_GT(atk.node().stats().frames_sent, 50u);
  // The 0x000 flood always wins arbitration; the defender's 0x173 is
  // starved (suspension attack, Fig. 2).
  EXPECT_LT(def.controller().stats().frames_sent, 3u);
}

TEST(MichiCanNode, CounterattackWindowMatchesAlgorithm1) {
  can::WiredAndBus bus;
  MichiCanNode def{"defender", kIvn, defender_cfg()};
  def.attach_to(bus);
  auto cfg = Attacker::targeted_dos(0x04A);  // recessive LSB, no edge stuff
  cfg.persistent = false;
  cfg.random_payload = false;
  Attacker atk{"attacker", cfg};
  atk.attach_to(bus);

  bus.run(200);

  const auto* start = bus.log().first(EventKind::CounterattackStart);
  const auto* end = bus.log().first(EventKind::CounterattackEnd);
  ASSERT_NE(start, nullptr);
  ASSERT_NE(end, nullptr);
  // The window covers 7 raw bit times (Algorithm 1: cnt 13 -> 20).
  EXPECT_EQ(end->at - start->at, 7u);
  // It is armed at the RTR sample: 13 bits + any ID stuff bits after SOF.
  const auto* sof = bus.log().first(EventKind::FrameTxStart, 0, "attacker");
  ASSERT_NE(sof, nullptr);
  EXPECT_GE(start->at - sof->at, 12u);
  EXPECT_LE(start->at - sof->at, 15u);
}

TEST(MichiCanNode, PersistentAttackerRebusedOffAfterRecovery) {
  can::WiredAndBus bus;
  MichiCanNode def{"defender", kIvn, defender_cfg()};
  def.attach_to(bus);
  Attacker atk{"attacker", Attacker::spoof(0x173)};  // persistent
  atk.attach_to(bus);

  bus.run(30'000);
  // Multiple bus-off cycles: attack, recovery, re-attack, ...
  EXPECT_GE(bus.log().count(EventKind::BusOff, "attacker"), 3u);
  EXPECT_GE(bus.log().count(EventKind::BusOffRecovered, "attacker"), 2u);
  EXPECT_EQ(def.controller().tec(), 0);
}

TEST(MichiCanNode, LightScenarioStillDetectsOwnIdSpoof) {
  can::WiredAndBus bus;
  auto cfg = defender_cfg(0x100);  // lower half of E
  cfg.scenario = Scenario::Light;
  MichiCanNode def{"defender", kIvn, cfg};
  def.attach_to(bus);
  auto acfg = Attacker::spoof(0x100);
  acfg.persistent = false;
  Attacker atk{"attacker", acfg};
  atk.attach_to(bus);

  bus.run(4000);
  EXPECT_TRUE(atk.node().is_bus_off());
}

TEST(MichiCanNode, LightScenarioIgnoresDosBelowOwnId) {
  can::WiredAndBus bus;
  auto cfg = defender_cfg();
  cfg.scenario = Scenario::Light;
  MichiCanNode def{"defender", kIvn, cfg};
  def.attach_to(bus);
  auto acfg = Attacker::targeted_dos(0x050);
  acfg.period_bits = 400;
  Attacker atk{"attacker", acfg};
  atk.attach_to(bus);

  bus.run(4000);
  // A light-scenario ECU only guards its own ID (the upper half of E is
  // expected to provide the DoS coverage).
  EXPECT_FALSE(atk.node().is_bus_off());
  EXPECT_EQ(def.monitor().stats().counterattacks, 0u);
}

TEST(MichiCanNode, TwoDefendersDoNotInterfere) {
  // Distributed deployment: both defenders detect the DoS simultaneously;
  // their counterattack windows overlap harmlessly (both pull dominant).
  can::WiredAndBus bus;
  MichiCanNode d1{"def1", kIvn, defender_cfg(0x173)};
  MichiCanNode d2{"def2", kIvn, defender_cfg(0x350)};
  d1.attach_to(bus);
  d2.attach_to(bus);
  auto cfg = Attacker::targeted_dos(0x050);
  cfg.persistent = false;
  Attacker atk{"attacker", cfg};
  atk.attach_to(bus);

  bus.run(4000);
  EXPECT_TRUE(atk.node().is_bus_off());
  EXPECT_EQ(d1.controller().tec(), 0);
  EXPECT_EQ(d2.controller().tec(), 0);
  EXPECT_GT(d1.monitor().stats().counterattacks, 0u);
  EXPECT_GT(d2.monitor().stats().counterattacks, 0u);
  // Exactly 32 attempts: overlapping counterattacks do not double-count
  // errors on the attacker.
  EXPECT_EQ(bus.log().count(EventKind::FrameTxStart, "attacker"), 32u);
}

TEST(MichiCanNode, FailedDefenderStillCoveredByOther) {
  // Redundancy claim of Sec. IV-A: with |E|-1 defenders failed, one is
  // enough.  Here def1 runs detection-only (its prevention "failed").
  can::WiredAndBus bus;
  auto broken = defender_cfg(0x173);
  broken.monitor.prevention_enabled = false;
  MichiCanNode d1{"def1", kIvn, broken};
  MichiCanNode d2{"def2", kIvn, defender_cfg(0x350)};
  d1.attach_to(bus);
  d2.attach_to(bus);
  auto cfg = Attacker::targeted_dos(0x050);
  cfg.persistent = false;
  Attacker atk{"attacker", cfg};
  atk.attach_to(bus);

  bus.run(4000);
  EXPECT_TRUE(atk.node().is_bus_off());
}

}  // namespace
}  // namespace mcan::core
