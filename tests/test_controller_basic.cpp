// End-to-end tests of the bit-level controller over the wired-AND bus:
// transmission, reception, acknowledgement, arbitration and timing.
#include "can/controller.hpp"

#include <gtest/gtest.h>

#include "can/bus.hpp"
#include "can/periodic.hpp"
#include "sim/rng.hpp"

namespace mcan::can {
namespace {

using sim::BitLevel;
using sim::BitTime;

struct TwoNodeBus {
  WiredAndBus bus{sim::BusSpeed{500'000}};
  BitController tx{"tx"};
  BitController rx{"rx"};
  std::vector<CanFrame> received;
  std::vector<BitTime> rx_times;

  TwoNodeBus() {
    tx.attach_to(bus);
    rx.attach_to(bus);
    rx.set_rx_callback([this](const CanFrame& f, BitTime t) {
      received.push_back(f);
      rx_times.push_back(t);
    });
  }
};

TEST(ControllerBasic, SingleFrameDeliveredIntact) {
  TwoNodeBus env;
  const auto f = CanFrame::make(0x173, {0xDE, 0xAD, 0xBE, 0xEF});
  env.tx.enqueue(f);
  env.bus.run(200);
  ASSERT_EQ(env.received.size(), 1u);
  EXPECT_EQ(env.received[0], f);
  EXPECT_EQ(env.tx.stats().frames_sent, 1u);
  EXPECT_EQ(env.tx.tec(), 0);
  EXPECT_EQ(env.rx.rec(), 0);
}

TEST(ControllerBasic, AllDlcValuesRoundTrip) {
  for (int dlc = 0; dlc <= 8; ++dlc) {
    TwoNodeBus env;
    const auto f = CanFrame::make_pattern(0x1AA, static_cast<std::uint8_t>(dlc),
                                          0x1122334455667788ull);
    env.tx.enqueue(f);
    env.bus.run(250);
    ASSERT_EQ(env.received.size(), 1u) << "dlc=" << dlc;
    EXPECT_EQ(env.received[0], f) << "dlc=" << dlc;
  }
}

TEST(ControllerBasic, RemoteFrameRoundTrips) {
  TwoNodeBus env;
  const auto f = CanFrame::make_remote(0x2F0, 3);
  env.tx.enqueue(f);
  env.bus.run(200);
  ASSERT_EQ(env.received.size(), 1u);
  EXPECT_TRUE(env.received[0].rtr);
  EXPECT_EQ(env.received[0].dlc, 3);
  EXPECT_EQ(env.received[0].id, 0x2F0);
}

TEST(ControllerBasic, RandomFramesRoundTripThroughRealBus) {
  sim::Rng rng{2024};
  TwoNodeBus env;
  std::vector<CanFrame> sent;
  for (int i = 0; i < 50; ++i) {
    CanFrame f;
    f.id = static_cast<CanId>(rng.uniform(0, kMaxStdId));
    f.dlc = static_cast<std::uint8_t>(rng.uniform(0, 8));
    for (int b = 0; b < f.dlc; ++b) {
      f.data[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    sent.push_back(f);
    env.tx.enqueue(f);
  }
  env.bus.run(50 * 200);
  ASSERT_EQ(env.received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(env.received[i], sent[i]) << "frame " << i;
  }
}

TEST(ControllerBasic, NoAckCausesRetransmissionLoop) {
  // A transmitter alone on the bus never gets an ACK: it must raise ACK
  // errors and retransmit, and — per the error-passive ACK rule — must NOT
  // drive itself into bus-off.
  WiredAndBus bus;
  BitController tx{"lonely"};
  tx.attach_to(bus);
  tx.enqueue(CanFrame::make(0x100, {0x42}));
  bus.run(20'000);
  EXPECT_EQ(tx.stats().frames_sent, 0u);
  EXPECT_GT(tx.stats().tx_errors, 10u);
  EXPECT_FALSE(tx.is_bus_off());
  // TEC saturates in the error-passive band: it rises to 128 by +8 steps
  // and then stops growing thanks to the ACK-error exception.
  EXPECT_EQ(tx.error_state(), ErrorState::ErrorPassive);
  EXPECT_LE(tx.tec(), 136);
}

TEST(ControllerBasic, LowerIdWinsArbitration) {
  WiredAndBus bus;
  BitController a{"a"};
  BitController b{"b"};
  BitController obs{"obs"};
  a.attach_to(bus);
  b.attach_to(bus);
  obs.attach_to(bus);
  std::vector<CanId> order;
  obs.set_rx_callback(
      [&](const CanFrame& f, BitTime) { order.push_back(f.id); });

  // Both enqueue while the bus is idle; they assert SOF on the same bit.
  a.enqueue(CanFrame::make(0x0F0, {0x01}));
  b.enqueue(CanFrame::make(0x00F, {0x02}));
  bus.run(400);

  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0x00F);  // lower ID first
  EXPECT_EQ(order[1], 0x0F0);
  EXPECT_EQ(a.stats().arbitration_losses, 1u);
  EXPECT_EQ(b.stats().arbitration_losses, 0u);
  EXPECT_EQ(a.tec(), 0);  // arbitration loss is not an error
  EXPECT_EQ(b.tec(), 0);
}

TEST(ControllerBasic, ArbitrationLoserReceivesWinnersFrame) {
  WiredAndBus bus;
  BitController a{"a"};
  BitController b{"b"};
  a.attach_to(bus);
  b.attach_to(bus);
  std::vector<CanFrame> a_rx;
  a.set_rx_callback([&](const CanFrame& f, BitTime) { a_rx.push_back(f); });

  const auto winner = CanFrame::make(0x005, {0xAA, 0xBB});
  a.enqueue(CanFrame::make(0x700, {0x01}));
  b.enqueue(winner);
  bus.run(400);

  ASSERT_GE(a_rx.size(), 1u);
  EXPECT_EQ(a_rx[0], winner);
}

TEST(ControllerBasic, InterFrameSpacingIsThreeBits) {
  // Between EOF of frame 1 and SOF of frame 2 there must be exactly 3
  // recessive bits when a transmitter has back-to-back traffic.
  TwoNodeBus env;
  env.tx.enqueue(CanFrame::make(0x100, {}));
  env.tx.enqueue(CanFrame::make(0x101, {}));
  env.bus.run(400);
  ASSERT_EQ(env.received.size(), 2u);

  // Find both SOFs in the trace: first edge, then the next edge after the
  // first frame's EOF.
  const auto& tr = env.bus.trace();
  const auto sof1 = tr.next_falling_edge(0);
  ASSERT_TRUE(sof1.has_value());
  const auto wire1 = wire_bits(CanFrame::make(0x100, {}));
  // Frame 1 occupies wire1.size() bits starting at sof1.
  const BitTime eof_end = *sof1 + wire1.size();
  const auto sof2 = tr.next_falling_edge(eof_end - 1);
  ASSERT_TRUE(sof2.has_value());
  EXPECT_EQ(*sof2 - eof_end, 3u);  // exactly the 3-bit intermission
}

TEST(ControllerBasic, AckSlotIsDrivenDominantByReceiver) {
  TwoNodeBus env;
  env.tx.enqueue(CanFrame::make(0x7FF, {}));  // all-recessive ID
  env.bus.run(200);
  ASSERT_EQ(env.received.size(), 1u);

  // Locate the ACK slot on the wire and check the bus level was dominant.
  const auto& tr = env.bus.trace();
  const auto sof = tr.next_falling_edge(0);
  ASSERT_TRUE(sof.has_value());
  const auto wire = wire_bits(CanFrame::make(0x7FF, {}));
  std::size_t ack_off = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    if (wire[i].field == Field::AckSlot) {
      ack_off = i;
      break;
    }
  }
  ASSERT_GT(ack_off, 0u);
  EXPECT_EQ(tr.at(*sof + ack_off), BitLevel::Dominant);
}

TEST(ControllerBasic, PeriodicSenderKeepsPeriod) {
  TwoNodeBus env;
  // 100 bit period at 500 kbit/s.
  attach_periodic(env.tx, CanFrame::make(0x123, {0x00}), 400.0);
  env.bus.run(4000);
  // ~10 cycles expected.
  EXPECT_GE(env.received.size(), 9u);
  EXPECT_LE(env.received.size(), 11u);
  for (std::size_t i = 1; i < env.rx_times.size(); ++i) {
    const auto delta = env.rx_times[i] - env.rx_times[i - 1];
    EXPECT_NEAR(static_cast<double>(delta), 400.0, 40.0);
  }
}

TEST(ControllerBasic, QueueCapacityDropsExcessFrames) {
  BitController::Config cfg;
  cfg.tx_queue_capacity = 2;
  WiredAndBus bus;
  BitController tx{"tx", cfg};
  tx.attach_to(bus);
  EXPECT_TRUE(tx.enqueue(CanFrame::make(0x1, {})));
  EXPECT_TRUE(tx.enqueue(CanFrame::make(0x2, {})));
  EXPECT_FALSE(tx.enqueue(CanFrame::make(0x3, {})));
  EXPECT_EQ(tx.stats().dropped_frames, 1u);
}

TEST(ControllerBasic, TxCallbackFiresOnSuccess) {
  TwoNodeBus env;
  int tx_done = 0;
  env.tx.set_tx_callback([&](const CanFrame&, BitTime) { ++tx_done; });
  env.tx.enqueue(CanFrame::make(0x321, {0x77}));
  env.bus.run(200);
  EXPECT_EQ(tx_done, 1);
}

TEST(ControllerBasic, BusIdleStaysRecessive) {
  WiredAndBus bus;
  BitController n{"idle"};
  n.attach_to(bus);
  bus.run(100);
  EXPECT_EQ(bus.trace().dominant_count(0, 100), 0u);
}

}  // namespace
}  // namespace mcan::can
