// Process-sharded fleet campaigns: seed-range partitioning, the
// store-centric merge's shard-count independence, checkpoint manifest
// round-trips, and warm-cache resume accounting.
//
// The fork/exec layer is exercised end-to-end by the CI fleet-smoke job
// (K=1 vs K=4 `cmp`, SIGKILL + resume); these tests pin the in-process
// invariants that make that job deterministic: run_fleet_shard over a
// shared store followed by a full-range run_campaign pass reproduces the
// direct single-process report byte-for-byte, and a resumed run replays
// every finished cell as a cache hit.
#include "runner/fleet.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "runner/cell_store.hpp"
#include "runner/report.hpp"
#include "runner/schemas.hpp"

namespace mcan {
namespace {

using runner::CheckpointManifest;
using runner::FleetConfig;
using runner::SeedRange;

FleetConfig small_fleet() {
  FleetConfig cfg;
  cfg.scenarios = {"exp2", "gw-spoof"};
  cfg.vehicles = 4;
  cfg.shards = 3;
  cfg.jobs = 1;
  cfg.duration_ms = 40;  // keep each cell cheap; override applies to both
  return cfg;
}

std::string deterministic_json(const runner::CampaignReport& report) {
  return runner::to_json(report);  // include_runtime=false by default
}

TEST(ShardSeedRange, PartitionsExactlyAndBalanced) {
  const struct {
    std::uint64_t vehicles;
    std::size_t shards;
  } cases[] = {{10, 3}, {7, 7}, {5, 1}, {1000, 16}, {4, 4}, {3, 8}};
  for (const auto& c : cases) {
    std::uint64_t covered = 0;
    std::uint64_t next = 0;
    std::uint64_t min_size = c.vehicles + 1;
    std::uint64_t max_size = 0;
    for (std::size_t k = 0; k < c.shards; ++k) {
      const SeedRange r = runner::shard_seed_range(c.vehicles, c.shards, k);
      // Contiguous: each shard starts exactly where the previous ended.
      EXPECT_EQ(r.begin, next) << "vehicles=" << c.vehicles << " k=" << k;
      EXPECT_GE(r.end, r.begin);
      next = r.end;
      covered += r.size();
      min_size = std::min<std::uint64_t>(min_size, r.size());
      max_size = std::max<std::uint64_t>(max_size, r.size());
    }
    EXPECT_EQ(next, c.vehicles);
    EXPECT_EQ(covered, c.vehicles);
    // Balanced to within one seed (some shards may be empty only when
    // shards > vehicles).
    EXPECT_LE(max_size - min_size, 1u);
  }
}

TEST(ShardSeedRange, RejectsBadArguments) {
  EXPECT_THROW((void)runner::shard_seed_range(10, 0, 0),
               std::invalid_argument);
  EXPECT_THROW((void)runner::shard_seed_range(10, 3, 3),
               std::invalid_argument);
  EXPECT_THROW((void)runner::shard_seed_range(10, 3, 7),
               std::invalid_argument);
}

TEST(FleetCampaign, ResolvesScenariosAndAppliesOverrides) {
  FleetConfig cfg = small_fleet();
  cfg.fast_path = false;
  const auto cc = runner::fleet_campaign(cfg);
  ASSERT_EQ(cc.specs.size(), 2u);
  EXPECT_DOUBLE_EQ(cc.specs[0].duration.value(), 40.0);
  EXPECT_DOUBLE_EQ(cc.specs[1].duration.value(), 40.0);
  EXPECT_FALSE(cc.specs[0].fast_path);
  EXPECT_EQ(cc.specs[1].topology.buses, 2u);
  EXPECT_EQ(cc.seeds.begin, 0u);
  EXPECT_EQ(cc.seeds.end, cfg.vehicles);
  EXPECT_EQ(cc.base_seed, cfg.base_seed);
}

TEST(FleetCampaign, RejectsUnusableConfigs) {
  {
    FleetConfig cfg = small_fleet();
    cfg.vehicles = 0;
    EXPECT_THROW(runner::fleet_campaign(cfg), std::invalid_argument);
  }
  {
    FleetConfig cfg = small_fleet();
    cfg.scenarios.clear();
    EXPECT_THROW(runner::fleet_campaign(cfg), std::invalid_argument);
  }
  {
    FleetConfig cfg = small_fleet();
    cfg.scenarios = {"no-such-scenario"};
    EXPECT_THROW(runner::fleet_campaign(cfg), std::invalid_argument);
  }
}

/// The heart of the design: shards only decide who *computes* each cell.
/// Running every shard into one store and then re-running the full plan
/// against that store must reproduce the direct single-process report
/// byte-for-byte, with the merge pass replaying every cell as a hit.
TEST(FleetMerge, ShardedComputeThenMergeMatchesDirectRun) {
  const FleetConfig cfg = small_fleet();

  // Direct reference: the full plan, no store.
  const auto direct = runner::run_campaign(runner::fleet_campaign(cfg));
  const std::string want = deterministic_json(direct);

  // Sharded compute: each shard covers its sub-range against one store.
  runner::MemoryStore store;
  std::size_t sharded_cells = 0;
  for (std::size_t k = 0; k < cfg.shards; ++k) {
    const auto shard = runner::run_fleet_shard(cfg, k, &store);
    EXPECT_EQ(shard.cache_hits, 0u) << "shard " << k;
    sharded_cells += shard.tasks.size();
  }
  const auto plan = runner::plan_campaign(runner::fleet_campaign(cfg));
  EXPECT_EQ(sharded_cells, plan.size());

  // Merge: full-range pass over the warm store.
  auto merge_cfg = runner::fleet_campaign(cfg);
  merge_cfg.cells = &store;
  const auto merged = runner::run_campaign(merge_cfg);
  EXPECT_EQ(merged.cache_hits, plan.size());
  EXPECT_EQ(merged.cache_misses, 0u);
  EXPECT_EQ(deterministic_json(merged), want);
}

/// Kill-then-resume equivalence, modeled in-process: a "crashed" shard
/// leaves its cells uncomputed, and the merge pass recomputes exactly
/// those — the report is still byte-identical to the direct run.
TEST(FleetMerge, MergeRecomputesCellsACrashedShardLeftBehind) {
  const FleetConfig cfg = small_fleet();
  const auto direct = runner::run_campaign(runner::fleet_campaign(cfg));
  const std::string want = deterministic_json(direct);

  runner::MemoryStore store;
  std::size_t computed = 0;
  for (std::size_t k = 0; k < cfg.shards; ++k) {
    if (k == 1) continue;  // shard 1 "was SIGKILLed before finishing"
    computed += runner::run_fleet_shard(cfg, k, &store).tasks.size();
  }

  auto merge_cfg = runner::fleet_campaign(cfg);
  merge_cfg.cells = &store;
  const auto merged = runner::run_campaign(merge_cfg);
  const auto plan = runner::plan_campaign(runner::fleet_campaign(cfg));
  EXPECT_EQ(merged.cache_hits, computed);
  EXPECT_EQ(merged.cache_misses, plan.size() - computed);
  EXPECT_EQ(deterministic_json(merged), want);
}

/// Resume accounting: a second full pass over the store left by a finished
/// run replays 100% of the plan from cache.
TEST(FleetMerge, WarmStoreReplaysEveryCell) {
  const FleetConfig cfg = small_fleet();
  runner::MemoryStore store;

  auto cc = runner::fleet_campaign(cfg);
  cc.cells = &store;
  const auto cold = runner::run_campaign(cc);
  const auto plan = runner::plan_campaign(runner::fleet_campaign(cfg));
  EXPECT_EQ(cold.cache_misses, plan.size());

  const auto warm = runner::run_campaign(cc);
  EXPECT_EQ(warm.cache_hits, plan.size());
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(deterministic_json(warm), deterministic_json(cold));
}

TEST(Checkpoint, ManifestRoundTripsThroughJson) {
  CheckpointManifest m;
  m.plan_hash = 0x0123456789abcdefull;
  m.total = 12;
  m.done = {"aa-bb-michican-cell-v1", "cc-dd-michican-cell-v1"};

  const std::string text = m.to_json();
  EXPECT_NE(text.find(runner::kFleetCheckpointSchema), std::string::npos);

  const auto parsed = runner::parse_checkpoint(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->plan_hash, m.plan_hash);
  EXPECT_EQ(parsed->total, m.total);
  EXPECT_EQ(parsed->done, m.done);
}

TEST(Checkpoint, ParseRejectsForeignDocuments) {
  EXPECT_FALSE(runner::parse_checkpoint("").has_value());
  EXPECT_FALSE(runner::parse_checkpoint("not json at all").has_value());
  EXPECT_FALSE(
      runner::parse_checkpoint(R"({"schema":"michican.campaign.v1"})")
          .has_value());
  // Right schema, mangled hash field.
  EXPECT_FALSE(runner::parse_checkpoint(
                   R"({"schema":"michican.fleet-checkpoint.v1",)"
                   R"("plan_hash":"xyz","total":1,"done":[]})")
                   .has_value());
  // Hash longer than 16 nibbles.
  EXPECT_FALSE(runner::parse_checkpoint(
                   R"({"schema":"michican.fleet-checkpoint.v1",)"
                   R"("plan_hash":"00112233445566778899","total":1,"done":[]})")
                   .has_value());
}

/// The plan hash names the *work* — scenarios, vehicles, base seed, spec
/// content — never the execution shape (shards, jobs), so resuming with a
/// different worker count is legal by construction.
TEST(Checkpoint, PlanHashCoversWorkDefinitionOnly) {
  const FleetConfig base = small_fleet();
  const auto h = runner::fleet_plan_hash(base);

  {
    FleetConfig cfg = base;
    cfg.shards = 16;
    cfg.jobs = 8;
    EXPECT_EQ(runner::fleet_plan_hash(cfg), h);
  }
  {
    FleetConfig cfg = base;
    cfg.fast_path = false;  // engine toggles are equivalence-gated
    cfg.batching = false;
    EXPECT_EQ(runner::fleet_plan_hash(cfg), h);
  }
  {
    FleetConfig cfg = base;
    cfg.vehicles += 1;
    EXPECT_NE(runner::fleet_plan_hash(cfg), h);
  }
  {
    FleetConfig cfg = base;
    cfg.base_seed += 1;
    EXPECT_NE(runner::fleet_plan_hash(cfg), h);
  }
  {
    FleetConfig cfg = base;
    cfg.scenarios = {"exp2"};
    EXPECT_NE(runner::fleet_plan_hash(cfg), h);
  }
  {
    FleetConfig cfg = base;
    cfg.duration_ms = 80;  // folded in via the resolved spec fingerprints
    EXPECT_NE(runner::fleet_plan_hash(cfg), h);
  }
}

}  // namespace
}  // namespace mcan
