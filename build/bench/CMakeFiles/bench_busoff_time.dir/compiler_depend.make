# Empty compiler generated dependencies file for bench_busoff_time.
# This may be replaced when dependencies are built.
