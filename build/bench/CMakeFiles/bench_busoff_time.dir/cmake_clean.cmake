file(REMOVE_RECURSE
  "CMakeFiles/bench_busoff_time.dir/bench_busoff_time.cpp.o"
  "CMakeFiles/bench_busoff_time.dir/bench_busoff_time.cpp.o.d"
  "bench_busoff_time"
  "bench_busoff_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_busoff_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
