file(REMOVE_RECURSE
  "CMakeFiles/bench_parrot_comparison.dir/bench_parrot_comparison.cpp.o"
  "CMakeFiles/bench_parrot_comparison.dir/bench_parrot_comparison.cpp.o.d"
  "bench_parrot_comparison"
  "bench_parrot_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parrot_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
