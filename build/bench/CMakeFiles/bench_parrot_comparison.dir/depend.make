# Empty dependencies file for bench_parrot_comparison.
# This may be replaced when dependencies are built.
