# Empty dependencies file for bench_cpu_utilization.
# This may be replaced when dependencies are built.
