file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu_utilization.dir/bench_cpu_utilization.cpp.o"
  "CMakeFiles/bench_cpu_utilization.dir/bench_cpu_utilization.cpp.o.d"
  "bench_cpu_utilization"
  "bench_cpu_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
