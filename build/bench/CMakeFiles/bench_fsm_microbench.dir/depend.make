# Empty dependencies file for bench_fsm_microbench.
# This may be replaced when dependencies are built.
