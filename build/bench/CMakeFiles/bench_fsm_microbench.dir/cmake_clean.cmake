file(REMOVE_RECURSE
  "CMakeFiles/bench_fsm_microbench.dir/bench_fsm_microbench.cpp.o"
  "CMakeFiles/bench_fsm_microbench.dir/bench_fsm_microbench.cpp.o.d"
  "bench_fsm_microbench"
  "bench_fsm_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fsm_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
