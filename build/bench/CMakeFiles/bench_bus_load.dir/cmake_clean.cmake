file(REMOVE_RECURSE
  "CMakeFiles/bench_bus_load.dir/bench_bus_load.cpp.o"
  "CMakeFiles/bench_bus_load.dir/bench_bus_load.cpp.o.d"
  "bench_bus_load"
  "bench_bus_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bus_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
