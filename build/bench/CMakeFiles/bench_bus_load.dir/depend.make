# Empty dependencies file for bench_bus_load.
# This may be replaced when dependencies are built.
