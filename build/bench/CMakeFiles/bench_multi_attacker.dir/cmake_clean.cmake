file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_attacker.dir/bench_multi_attacker.cpp.o"
  "CMakeFiles/bench_multi_attacker.dir/bench_multi_attacker.cpp.o.d"
  "bench_multi_attacker"
  "bench_multi_attacker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_attacker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
