# Empty dependencies file for bench_multi_attacker.
# This may be replaced when dependencies are built.
