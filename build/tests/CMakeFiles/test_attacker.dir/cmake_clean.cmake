file(REMOVE_RECURSE
  "CMakeFiles/test_attacker.dir/test_attacker.cpp.o"
  "CMakeFiles/test_attacker.dir/test_attacker.cpp.o.d"
  "test_attacker"
  "test_attacker.pdb"
  "test_attacker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attacker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
