# Empty compiler generated dependencies file for test_attacker.
# This may be replaced when dependencies are built.
