file(REMOVE_RECURSE
  "CMakeFiles/test_corruption_safety.dir/test_corruption_safety.cpp.o"
  "CMakeFiles/test_corruption_safety.dir/test_corruption_safety.cpp.o.d"
  "test_corruption_safety"
  "test_corruption_safety.pdb"
  "test_corruption_safety[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corruption_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
