# Empty dependencies file for test_corruption_safety.
# This may be replaced when dependencies are built.
