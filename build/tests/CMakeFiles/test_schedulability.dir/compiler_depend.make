# Empty compiler generated dependencies file for test_schedulability.
# This may be replaced when dependencies are built.
