file(REMOVE_RECURSE
  "CMakeFiles/test_crc15.dir/test_crc15.cpp.o"
  "CMakeFiles/test_crc15.dir/test_crc15.cpp.o.d"
  "test_crc15"
  "test_crc15.pdb"
  "test_crc15[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crc15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
