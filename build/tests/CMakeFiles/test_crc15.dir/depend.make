# Empty dependencies file for test_crc15.
# This may be replaced when dependencies are built.
