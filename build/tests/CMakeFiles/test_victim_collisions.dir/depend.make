# Empty dependencies file for test_victim_collisions.
# This may be replaced when dependencies are built.
