file(REMOVE_RECURSE
  "CMakeFiles/test_victim_collisions.dir/test_victim_collisions.cpp.o"
  "CMakeFiles/test_victim_collisions.dir/test_victim_collisions.cpp.o.d"
  "test_victim_collisions"
  "test_victim_collisions.pdb"
  "test_victim_collisions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_victim_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
