file(REMOVE_RECURSE
  "CMakeFiles/test_restbus.dir/test_restbus.cpp.o"
  "CMakeFiles/test_restbus.dir/test_restbus.cpp.o.d"
  "test_restbus"
  "test_restbus.pdb"
  "test_restbus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_restbus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
