# Empty dependencies file for test_restbus.
# This may be replaced when dependencies are built.
