file(REMOVE_RECURSE
  "CMakeFiles/test_error_handling.dir/test_error_handling.cpp.o"
  "CMakeFiles/test_error_handling.dir/test_error_handling.cpp.o.d"
  "test_error_handling"
  "test_error_handling.pdb"
  "test_error_handling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_handling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
