# Empty dependencies file for test_error_handling.
# This may be replaced when dependencies are built.
