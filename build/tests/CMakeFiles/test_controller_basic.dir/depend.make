# Empty dependencies file for test_controller_basic.
# This may be replaced when dependencies are built.
