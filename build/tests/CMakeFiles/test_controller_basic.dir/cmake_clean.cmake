file(REMOVE_RECURSE
  "CMakeFiles/test_controller_basic.dir/test_controller_basic.cpp.o"
  "CMakeFiles/test_controller_basic.dir/test_controller_basic.cpp.o.d"
  "test_controller_basic"
  "test_controller_basic.pdb"
  "test_controller_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_controller_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
