file(REMOVE_RECURSE
  "CMakeFiles/test_michican_node.dir/test_michican_node.cpp.o"
  "CMakeFiles/test_michican_node.dir/test_michican_node.cpp.o.d"
  "test_michican_node"
  "test_michican_node.pdb"
  "test_michican_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_michican_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
