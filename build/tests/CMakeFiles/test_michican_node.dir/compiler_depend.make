# Empty compiler generated dependencies file for test_michican_node.
# This may be replaced when dependencies are built.
