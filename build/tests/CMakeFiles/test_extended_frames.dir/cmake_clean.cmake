file(REMOVE_RECURSE
  "CMakeFiles/test_extended_frames.dir/test_extended_frames.cpp.o"
  "CMakeFiles/test_extended_frames.dir/test_extended_frames.cpp.o.d"
  "test_extended_frames"
  "test_extended_frames.pdb"
  "test_extended_frames[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extended_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
