# Empty compiler generated dependencies file for test_extended_frames.
# This may be replaced when dependencies are built.
