# Empty compiler generated dependencies file for test_signals.
# This may be replaced when dependencies are built.
