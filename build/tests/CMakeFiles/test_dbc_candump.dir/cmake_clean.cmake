file(REMOVE_RECURSE
  "CMakeFiles/test_dbc_candump.dir/test_dbc_candump.cpp.o"
  "CMakeFiles/test_dbc_candump.dir/test_dbc_candump.cpp.o.d"
  "test_dbc_candump"
  "test_dbc_candump.pdb"
  "test_dbc_candump[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dbc_candump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
