# Empty compiler generated dependencies file for test_dbc_candump.
# This may be replaced when dependencies are built.
