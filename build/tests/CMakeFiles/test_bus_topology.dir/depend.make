# Empty dependencies file for test_bus_topology.
# This may be replaced when dependencies are built.
