file(REMOVE_RECURSE
  "CMakeFiles/test_bus_topology.dir/test_bus_topology.cpp.o"
  "CMakeFiles/test_bus_topology.dir/test_bus_topology.cpp.o.d"
  "test_bus_topology"
  "test_bus_topology.pdb"
  "test_bus_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bus_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
