# Empty dependencies file for test_overload.
# This may be replaced when dependencies are built.
