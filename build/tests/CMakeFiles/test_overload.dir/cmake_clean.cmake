file(REMOVE_RECURSE
  "CMakeFiles/test_overload.dir/test_overload.cpp.o"
  "CMakeFiles/test_overload.dir/test_overload.cpp.o.d"
  "test_overload"
  "test_overload.pdb"
  "test_overload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
