# Empty compiler generated dependencies file for test_protocol_rules.
# This may be replaced when dependencies are built.
