file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_rules.dir/test_protocol_rules.cpp.o"
  "CMakeFiles/test_protocol_rules.dir/test_protocol_rules.cpp.o.d"
  "test_protocol_rules"
  "test_protocol_rules.pdb"
  "test_protocol_rules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
