file(REMOVE_RECURSE
  "CMakeFiles/test_frequency_ids.dir/test_frequency_ids.cpp.o"
  "CMakeFiles/test_frequency_ids.dir/test_frequency_ids.cpp.o.d"
  "test_frequency_ids"
  "test_frequency_ids.pdb"
  "test_frequency_ids[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frequency_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
