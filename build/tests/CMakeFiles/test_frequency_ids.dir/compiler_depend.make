# Empty compiler generated dependencies file for test_frequency_ids.
# This may be replaced when dependencies are built.
