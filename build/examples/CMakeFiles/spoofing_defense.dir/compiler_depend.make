# Empty compiler generated dependencies file for spoofing_defense.
# This may be replaced when dependencies are built.
