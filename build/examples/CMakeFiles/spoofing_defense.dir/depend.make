# Empty dependencies file for spoofing_defense.
# This may be replaced when dependencies are built.
