
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/spoofing_defense.cpp" "examples/CMakeFiles/spoofing_defense.dir/spoofing_defense.cpp.o" "gcc" "examples/CMakeFiles/spoofing_defense.dir/spoofing_defense.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/michican_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/michican_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/michican_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/restbus/CMakeFiles/michican_restbus.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/michican_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/michican_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/can/CMakeFiles/michican_can.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/michican_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
