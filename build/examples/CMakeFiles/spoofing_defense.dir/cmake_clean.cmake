file(REMOVE_RECURSE
  "CMakeFiles/spoofing_defense.dir/spoofing_defense.cpp.o"
  "CMakeFiles/spoofing_defense.dir/spoofing_defense.cpp.o.d"
  "spoofing_defense"
  "spoofing_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofing_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
