# Empty compiler generated dependencies file for fleet_deployment.
# This may be replaced when dependencies are built.
