# Empty compiler generated dependencies file for park_assist.
# This may be replaced when dependencies are built.
