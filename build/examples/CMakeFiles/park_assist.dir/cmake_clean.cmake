file(REMOVE_RECURSE
  "CMakeFiles/park_assist.dir/park_assist.cpp.o"
  "CMakeFiles/park_assist.dir/park_assist.cpp.o.d"
  "park_assist"
  "park_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/park_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
