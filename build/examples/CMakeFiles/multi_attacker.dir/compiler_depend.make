# Empty compiler generated dependencies file for multi_attacker.
# This may be replaced when dependencies are built.
