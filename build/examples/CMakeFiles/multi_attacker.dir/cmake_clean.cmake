file(REMOVE_RECURSE
  "CMakeFiles/multi_attacker.dir/multi_attacker.cpp.o"
  "CMakeFiles/multi_attacker.dir/multi_attacker.cpp.o.d"
  "multi_attacker"
  "multi_attacker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_attacker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
