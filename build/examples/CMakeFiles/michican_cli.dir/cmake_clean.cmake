file(REMOVE_RECURSE
  "CMakeFiles/michican_cli.dir/michican_cli.cpp.o"
  "CMakeFiles/michican_cli.dir/michican_cli.cpp.o.d"
  "michican_cli"
  "michican_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/michican_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
