# Empty dependencies file for michican_cli.
# This may be replaced when dependencies are built.
