# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spoofing_defense "/root/repo/build/examples/spoofing_defense")
set_tests_properties(example_spoofing_defense PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_park_assist "/root/repo/build/examples/park_assist")
set_tests_properties(example_park_assist PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_attacker "/root/repo/build/examples/multi_attacker")
set_tests_properties(example_multi_attacker PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fleet_deployment "/root/repo/build/examples/fleet_deployment")
set_tests_properties(example_fleet_deployment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_experiment "/root/repo/build/examples/michican_cli" "experiment" "4" "7" "500")
set_tests_properties(cli_experiment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_sweep "/root/repo/build/examples/michican_cli" "sweep" "2")
set_tests_properties(cli_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_latency "/root/repo/build/examples/michican_cli" "latency" "1000")
set_tests_properties(cli_latency PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_rta "/root/repo/build/examples/michican_cli" "rta" "0")
set_tests_properties(cli_rta PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_rta_under_attack "/root/repo/build/examples/michican_cli" "rta" "0" "1248")
set_tests_properties(cli_rta_under_attack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_dbc "/root/repo/build/examples/michican_cli" "dbc" "6")
set_tests_properties(cli_dbc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/examples/michican_cli" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
