
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cpu_model.cpp" "src/core/CMakeFiles/michican_core.dir/cpu_model.cpp.o" "gcc" "src/core/CMakeFiles/michican_core.dir/cpu_model.cpp.o.d"
  "/root/repo/src/core/detection.cpp" "src/core/CMakeFiles/michican_core.dir/detection.cpp.o" "gcc" "src/core/CMakeFiles/michican_core.dir/detection.cpp.o.d"
  "/root/repo/src/core/fleet.cpp" "src/core/CMakeFiles/michican_core.dir/fleet.cpp.o" "gcc" "src/core/CMakeFiles/michican_core.dir/fleet.cpp.o.d"
  "/root/repo/src/core/fsm.cpp" "src/core/CMakeFiles/michican_core.dir/fsm.cpp.o" "gcc" "src/core/CMakeFiles/michican_core.dir/fsm.cpp.o.d"
  "/root/repo/src/core/michican_node.cpp" "src/core/CMakeFiles/michican_core.dir/michican_node.cpp.o" "gcc" "src/core/CMakeFiles/michican_core.dir/michican_node.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/michican_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/michican_core.dir/monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/michican_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/can/CMakeFiles/michican_can.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/michican_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/restbus/CMakeFiles/michican_restbus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
