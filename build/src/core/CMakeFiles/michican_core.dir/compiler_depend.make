# Empty compiler generated dependencies file for michican_core.
# This may be replaced when dependencies are built.
