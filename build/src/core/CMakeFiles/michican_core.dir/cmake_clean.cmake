file(REMOVE_RECURSE
  "CMakeFiles/michican_core.dir/cpu_model.cpp.o"
  "CMakeFiles/michican_core.dir/cpu_model.cpp.o.d"
  "CMakeFiles/michican_core.dir/detection.cpp.o"
  "CMakeFiles/michican_core.dir/detection.cpp.o.d"
  "CMakeFiles/michican_core.dir/fleet.cpp.o"
  "CMakeFiles/michican_core.dir/fleet.cpp.o.d"
  "CMakeFiles/michican_core.dir/fsm.cpp.o"
  "CMakeFiles/michican_core.dir/fsm.cpp.o.d"
  "CMakeFiles/michican_core.dir/michican_node.cpp.o"
  "CMakeFiles/michican_core.dir/michican_node.cpp.o.d"
  "CMakeFiles/michican_core.dir/monitor.cpp.o"
  "CMakeFiles/michican_core.dir/monitor.cpp.o.d"
  "libmichican_core.a"
  "libmichican_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/michican_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
