file(REMOVE_RECURSE
  "libmichican_core.a"
)
