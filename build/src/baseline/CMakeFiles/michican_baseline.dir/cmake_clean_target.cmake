file(REMOVE_RECURSE
  "libmichican_baseline.a"
)
