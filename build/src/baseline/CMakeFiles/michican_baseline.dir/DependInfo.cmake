
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/frequency_ids.cpp" "src/baseline/CMakeFiles/michican_baseline.dir/frequency_ids.cpp.o" "gcc" "src/baseline/CMakeFiles/michican_baseline.dir/frequency_ids.cpp.o.d"
  "/root/repo/src/baseline/parrot.cpp" "src/baseline/CMakeFiles/michican_baseline.dir/parrot.cpp.o" "gcc" "src/baseline/CMakeFiles/michican_baseline.dir/parrot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/michican_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/can/CMakeFiles/michican_can.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
