# Empty dependencies file for michican_baseline.
# This may be replaced when dependencies are built.
