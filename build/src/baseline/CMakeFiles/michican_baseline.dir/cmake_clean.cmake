file(REMOVE_RECURSE
  "CMakeFiles/michican_baseline.dir/frequency_ids.cpp.o"
  "CMakeFiles/michican_baseline.dir/frequency_ids.cpp.o.d"
  "CMakeFiles/michican_baseline.dir/parrot.cpp.o"
  "CMakeFiles/michican_baseline.dir/parrot.cpp.o.d"
  "libmichican_baseline.a"
  "libmichican_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/michican_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
