# Empty dependencies file for michican_restbus.
# This may be replaced when dependencies are built.
