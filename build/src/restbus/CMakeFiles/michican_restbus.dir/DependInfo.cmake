
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/restbus/candump.cpp" "src/restbus/CMakeFiles/michican_restbus.dir/candump.cpp.o" "gcc" "src/restbus/CMakeFiles/michican_restbus.dir/candump.cpp.o.d"
  "/root/repo/src/restbus/comm_matrix.cpp" "src/restbus/CMakeFiles/michican_restbus.dir/comm_matrix.cpp.o" "gcc" "src/restbus/CMakeFiles/michican_restbus.dir/comm_matrix.cpp.o.d"
  "/root/repo/src/restbus/dbc.cpp" "src/restbus/CMakeFiles/michican_restbus.dir/dbc.cpp.o" "gcc" "src/restbus/CMakeFiles/michican_restbus.dir/dbc.cpp.o.d"
  "/root/repo/src/restbus/replay.cpp" "src/restbus/CMakeFiles/michican_restbus.dir/replay.cpp.o" "gcc" "src/restbus/CMakeFiles/michican_restbus.dir/replay.cpp.o.d"
  "/root/repo/src/restbus/schedulability.cpp" "src/restbus/CMakeFiles/michican_restbus.dir/schedulability.cpp.o" "gcc" "src/restbus/CMakeFiles/michican_restbus.dir/schedulability.cpp.o.d"
  "/root/repo/src/restbus/signals.cpp" "src/restbus/CMakeFiles/michican_restbus.dir/signals.cpp.o" "gcc" "src/restbus/CMakeFiles/michican_restbus.dir/signals.cpp.o.d"
  "/root/repo/src/restbus/vehicles.cpp" "src/restbus/CMakeFiles/michican_restbus.dir/vehicles.cpp.o" "gcc" "src/restbus/CMakeFiles/michican_restbus.dir/vehicles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/michican_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/can/CMakeFiles/michican_can.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
