file(REMOVE_RECURSE
  "libmichican_restbus.a"
)
