file(REMOVE_RECURSE
  "CMakeFiles/michican_restbus.dir/candump.cpp.o"
  "CMakeFiles/michican_restbus.dir/candump.cpp.o.d"
  "CMakeFiles/michican_restbus.dir/comm_matrix.cpp.o"
  "CMakeFiles/michican_restbus.dir/comm_matrix.cpp.o.d"
  "CMakeFiles/michican_restbus.dir/dbc.cpp.o"
  "CMakeFiles/michican_restbus.dir/dbc.cpp.o.d"
  "CMakeFiles/michican_restbus.dir/replay.cpp.o"
  "CMakeFiles/michican_restbus.dir/replay.cpp.o.d"
  "CMakeFiles/michican_restbus.dir/schedulability.cpp.o"
  "CMakeFiles/michican_restbus.dir/schedulability.cpp.o.d"
  "CMakeFiles/michican_restbus.dir/signals.cpp.o"
  "CMakeFiles/michican_restbus.dir/signals.cpp.o.d"
  "CMakeFiles/michican_restbus.dir/vehicles.cpp.o"
  "CMakeFiles/michican_restbus.dir/vehicles.cpp.o.d"
  "libmichican_restbus.a"
  "libmichican_restbus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/michican_restbus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
