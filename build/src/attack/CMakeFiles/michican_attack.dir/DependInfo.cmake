
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/attacker.cpp" "src/attack/CMakeFiles/michican_attack.dir/attacker.cpp.o" "gcc" "src/attack/CMakeFiles/michican_attack.dir/attacker.cpp.o.d"
  "/root/repo/src/attack/cannon.cpp" "src/attack/CMakeFiles/michican_attack.dir/cannon.cpp.o" "gcc" "src/attack/CMakeFiles/michican_attack.dir/cannon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/michican_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/can/CMakeFiles/michican_can.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
