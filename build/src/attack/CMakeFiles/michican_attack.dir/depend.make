# Empty dependencies file for michican_attack.
# This may be replaced when dependencies are built.
