file(REMOVE_RECURSE
  "CMakeFiles/michican_attack.dir/attacker.cpp.o"
  "CMakeFiles/michican_attack.dir/attacker.cpp.o.d"
  "CMakeFiles/michican_attack.dir/cannon.cpp.o"
  "CMakeFiles/michican_attack.dir/cannon.cpp.o.d"
  "libmichican_attack.a"
  "libmichican_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/michican_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
