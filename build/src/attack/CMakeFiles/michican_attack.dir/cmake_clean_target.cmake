file(REMOVE_RECURSE
  "libmichican_attack.a"
)
