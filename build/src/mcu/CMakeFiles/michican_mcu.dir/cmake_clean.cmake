file(REMOVE_RECURSE
  "CMakeFiles/michican_mcu.dir/bit_timer.cpp.o"
  "CMakeFiles/michican_mcu.dir/bit_timer.cpp.o.d"
  "CMakeFiles/michican_mcu.dir/pinmux.cpp.o"
  "CMakeFiles/michican_mcu.dir/pinmux.cpp.o.d"
  "CMakeFiles/michican_mcu.dir/profile.cpp.o"
  "CMakeFiles/michican_mcu.dir/profile.cpp.o.d"
  "libmichican_mcu.a"
  "libmichican_mcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/michican_mcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
