# Empty dependencies file for michican_mcu.
# This may be replaced when dependencies are built.
