file(REMOVE_RECURSE
  "libmichican_mcu.a"
)
