
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcu/bit_timer.cpp" "src/mcu/CMakeFiles/michican_mcu.dir/bit_timer.cpp.o" "gcc" "src/mcu/CMakeFiles/michican_mcu.dir/bit_timer.cpp.o.d"
  "/root/repo/src/mcu/pinmux.cpp" "src/mcu/CMakeFiles/michican_mcu.dir/pinmux.cpp.o" "gcc" "src/mcu/CMakeFiles/michican_mcu.dir/pinmux.cpp.o.d"
  "/root/repo/src/mcu/profile.cpp" "src/mcu/CMakeFiles/michican_mcu.dir/profile.cpp.o" "gcc" "src/mcu/CMakeFiles/michican_mcu.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/michican_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
