file(REMOVE_RECURSE
  "CMakeFiles/michican_sim.dir/event_log.cpp.o"
  "CMakeFiles/michican_sim.dir/event_log.cpp.o.d"
  "CMakeFiles/michican_sim.dir/rng.cpp.o"
  "CMakeFiles/michican_sim.dir/rng.cpp.o.d"
  "CMakeFiles/michican_sim.dir/stats.cpp.o"
  "CMakeFiles/michican_sim.dir/stats.cpp.o.d"
  "CMakeFiles/michican_sim.dir/trace.cpp.o"
  "CMakeFiles/michican_sim.dir/trace.cpp.o.d"
  "libmichican_sim.a"
  "libmichican_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/michican_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
