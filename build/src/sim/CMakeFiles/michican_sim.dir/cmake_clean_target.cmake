file(REMOVE_RECURSE
  "libmichican_sim.a"
)
