# Empty dependencies file for michican_sim.
# This may be replaced when dependencies are built.
