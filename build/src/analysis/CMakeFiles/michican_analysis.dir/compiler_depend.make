# Empty compiler generated dependencies file for michican_analysis.
# This may be replaced when dependencies are built.
