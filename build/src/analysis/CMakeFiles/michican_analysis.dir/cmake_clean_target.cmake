file(REMOVE_RECURSE
  "libmichican_analysis.a"
)
