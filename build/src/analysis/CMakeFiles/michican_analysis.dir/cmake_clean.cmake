file(REMOVE_RECURSE
  "CMakeFiles/michican_analysis.dir/busoff_meter.cpp.o"
  "CMakeFiles/michican_analysis.dir/busoff_meter.cpp.o.d"
  "CMakeFiles/michican_analysis.dir/experiments.cpp.o"
  "CMakeFiles/michican_analysis.dir/experiments.cpp.o.d"
  "CMakeFiles/michican_analysis.dir/forensics.cpp.o"
  "CMakeFiles/michican_analysis.dir/forensics.cpp.o.d"
  "CMakeFiles/michican_analysis.dir/latency.cpp.o"
  "CMakeFiles/michican_analysis.dir/latency.cpp.o.d"
  "CMakeFiles/michican_analysis.dir/table.cpp.o"
  "CMakeFiles/michican_analysis.dir/table.cpp.o.d"
  "CMakeFiles/michican_analysis.dir/theory.cpp.o"
  "CMakeFiles/michican_analysis.dir/theory.cpp.o.d"
  "libmichican_analysis.a"
  "libmichican_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/michican_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
