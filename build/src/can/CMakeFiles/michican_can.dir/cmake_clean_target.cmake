file(REMOVE_RECURSE
  "libmichican_can.a"
)
