file(REMOVE_RECURSE
  "CMakeFiles/michican_can.dir/bitstream.cpp.o"
  "CMakeFiles/michican_can.dir/bitstream.cpp.o.d"
  "CMakeFiles/michican_can.dir/bus.cpp.o"
  "CMakeFiles/michican_can.dir/bus.cpp.o.d"
  "CMakeFiles/michican_can.dir/controller.cpp.o"
  "CMakeFiles/michican_can.dir/controller.cpp.o.d"
  "CMakeFiles/michican_can.dir/crc15.cpp.o"
  "CMakeFiles/michican_can.dir/crc15.cpp.o.d"
  "CMakeFiles/michican_can.dir/fault.cpp.o"
  "CMakeFiles/michican_can.dir/fault.cpp.o.d"
  "CMakeFiles/michican_can.dir/frame.cpp.o"
  "CMakeFiles/michican_can.dir/frame.cpp.o.d"
  "CMakeFiles/michican_can.dir/gateway.cpp.o"
  "CMakeFiles/michican_can.dir/gateway.cpp.o.d"
  "CMakeFiles/michican_can.dir/periodic.cpp.o"
  "CMakeFiles/michican_can.dir/periodic.cpp.o.d"
  "libmichican_can.a"
  "libmichican_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/michican_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
