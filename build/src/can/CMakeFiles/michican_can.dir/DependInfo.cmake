
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/can/bitstream.cpp" "src/can/CMakeFiles/michican_can.dir/bitstream.cpp.o" "gcc" "src/can/CMakeFiles/michican_can.dir/bitstream.cpp.o.d"
  "/root/repo/src/can/bus.cpp" "src/can/CMakeFiles/michican_can.dir/bus.cpp.o" "gcc" "src/can/CMakeFiles/michican_can.dir/bus.cpp.o.d"
  "/root/repo/src/can/controller.cpp" "src/can/CMakeFiles/michican_can.dir/controller.cpp.o" "gcc" "src/can/CMakeFiles/michican_can.dir/controller.cpp.o.d"
  "/root/repo/src/can/crc15.cpp" "src/can/CMakeFiles/michican_can.dir/crc15.cpp.o" "gcc" "src/can/CMakeFiles/michican_can.dir/crc15.cpp.o.d"
  "/root/repo/src/can/fault.cpp" "src/can/CMakeFiles/michican_can.dir/fault.cpp.o" "gcc" "src/can/CMakeFiles/michican_can.dir/fault.cpp.o.d"
  "/root/repo/src/can/frame.cpp" "src/can/CMakeFiles/michican_can.dir/frame.cpp.o" "gcc" "src/can/CMakeFiles/michican_can.dir/frame.cpp.o.d"
  "/root/repo/src/can/gateway.cpp" "src/can/CMakeFiles/michican_can.dir/gateway.cpp.o" "gcc" "src/can/CMakeFiles/michican_can.dir/gateway.cpp.o.d"
  "/root/repo/src/can/periodic.cpp" "src/can/CMakeFiles/michican_can.dir/periodic.cpp.o" "gcc" "src/can/CMakeFiles/michican_can.dir/periodic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/michican_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
