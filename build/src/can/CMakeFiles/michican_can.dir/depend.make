# Empty dependencies file for michican_can.
# This may be replaced when dependencies are built.
